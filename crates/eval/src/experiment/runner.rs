//! The sweep runner: computes each matcher's similarity cube once per task
//! (the paper stores cubes in the repository for exactly this purpose) and
//! then re-runs only the combination step for every series.

use crate::corpus::{Corpus, TASKS};
use crate::experiment::grid::SeriesSpec;
use crate::metrics::{AverageQuality, MatchQuality};
use coma_core::matchers::hybrid::{NameMatcher, NamePathMatcher, TypeNameMatcher};
use coma_core::matchers::name_engine::NameEngine;
use coma_core::matchers::structural::{ChildrenMatcher, LeavesMatcher};
use coma_core::{
    combine_cube_with_feedback, CombinationStrategy, CombinedSim, MatchContext, MatchPlan,
    MatchResult, Matcher, MatcherLibrary, PlanEngine, SchemaMatcher, SimCube,
};
use coma_repo::{MappingKind, Repository};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Pre-computed data of one match task.
pub struct TaskData {
    /// 0-based index of the source schema.
    pub source: usize,
    /// 0-based index of the target schema.
    pub target: usize,
    /// Gold standard as (source path index, target path index) pairs.
    pub gold: BTreeSet<(usize, usize)>,
    /// Cube with the Average-internal hybrid slices plus the reuse slices
    /// (`Name`, `NamePath`, `TypeName`, `Children`, `Leaves`, `SchemaM`,
    /// `SchemaA`, `Fragment`).
    pub cube_avg: SimCube,
    /// Cube with the Dice-internal hybrid slices.
    pub cube_dice: SimCube,
}

/// The result of one series: per-task qualities and their averages.
#[derive(Debug, Clone)]
pub struct SeriesResult {
    /// The evaluated series.
    pub spec: SeriesSpec,
    /// Quality per task, in [`TASKS`] order.
    pub per_task: Vec<MatchQuality>,
    /// Measures averaged over the ten tasks.
    pub average: AverageQuality,
}

/// The evaluation harness: corpus + repository + per-task cubes.
pub struct Harness {
    corpus: Corpus,
    repository: Repository,
    tasks: Vec<TaskData>,
    /// The default match operation's result per task (used for `SchemaA`
    /// reuse and reported by the examples).
    default_results: Vec<MatchResult>,
    /// The standard matcher library, for plan-aware evaluation (its
    /// paper-default hybrids equal the Average-internal cube variant).
    library: MatcherLibrary,
}

/// Builds the five hybrid matchers with the given internal step-3 strategy.
fn hybrid_matchers(combined: CombinedSim) -> Vec<(&'static str, Arc<dyn Matcher>)> {
    let engine = NameEngine {
        combined,
        ..NameEngine::paper_default()
    };
    let type_name = TypeNameMatcher {
        engine: engine.clone(),
        name_weight: 0.7,
        type_weight: 0.3,
    };
    vec![
        (
            "Name",
            Arc::new(NameMatcher::with_engine(engine.clone())) as Arc<dyn Matcher>,
        ),
        (
            "NamePath",
            Arc::new(NamePathMatcher::with_engine(engine.clone())),
        ),
        ("TypeName", Arc::new(type_name.clone())),
        (
            "Children",
            Arc::new(
                ChildrenMatcher::with_leaf_matcher(Arc::new(type_name.clone()))
                    .with_combined(combined),
            ),
        ),
        (
            "Leaves",
            Arc::new(LeavesMatcher::with_leaf_matcher(Arc::new(type_name)).with_combined(combined)),
        ),
    ]
}

impl Harness {
    /// Loads the corpus, stores the manual gold standards, runs the default
    /// operation to obtain the automatic results for `SchemaA`, and
    /// pre-computes every matcher cube.
    pub fn new() -> Harness {
        let corpus = Corpus::load();

        // Phase 1: hybrid slices (no repository needed), both variants.
        let avg_set = hybrid_matchers(CombinedSim::Average);
        let dice_set = hybrid_matchers(CombinedSim::Dice);
        let mut hybrid_cubes: Vec<(SimCube, SimCube)> = Vec::with_capacity(TASKS.len());
        for &(i, j) in &TASKS {
            let ctx = MatchContext::new(
                corpus.schema(i),
                corpus.schema(j),
                corpus.path_set(i),
                corpus.path_set(j),
                corpus.aux(),
            );
            let mut cube_avg = SimCube::new();
            for (name, m) in &avg_set {
                cube_avg.push(*name, m.compute(&ctx));
            }
            let mut cube_dice = SimCube::new();
            for (name, m) in &dice_set {
                cube_dice.push(*name, m.compute(&ctx));
            }
            hybrid_cubes.push((cube_avg, cube_dice));
        }

        // Phase 2: repository with manual gold + automatic default results.
        let mut repository = Repository::new();
        for &(i, j) in &TASKS {
            repository.put_mapping(corpus.gold_mapping(i, j));
        }
        let default_combination = CombinationStrategy::paper_default();
        let mut default_results = Vec::with_capacity(TASKS.len());
        for (t, &(i, j)) in TASKS.iter().enumerate() {
            let ctx = MatchContext::new(
                corpus.schema(i),
                corpus.schema(j),
                corpus.path_set(i),
                corpus.path_set(j),
                corpus.aux(),
            );
            let result = combine_cube_with_feedback(
                &hybrid_cubes[t].0,
                &ctx,
                &default_combination,
                &coma_core::matchers::feedback::Feedback::new(),
            );
            repository.put_mapping(result.to_mapping(&ctx, MappingKind::Automatic));
            default_results.push(result);
        }

        // Phase 3: reuse slices against the populated repository.
        let schema_m = SchemaMatcher::manual();
        let schema_a = SchemaMatcher::automatic();
        let fragment = coma_core::FragmentMatcher::new();
        let mut tasks = Vec::with_capacity(TASKS.len());
        for (t, &(i, j)) in TASKS.iter().enumerate() {
            let ctx = MatchContext::new(
                corpus.schema(i),
                corpus.schema(j),
                corpus.path_set(i),
                corpus.path_set(j),
                corpus.aux(),
            )
            .with_repository(&repository);
            let (mut cube_avg, cube_dice) = hybrid_cubes[t].clone();
            cube_avg.push("SchemaM", schema_m.compute(&ctx));
            cube_avg.push("SchemaA", schema_a.compute(&ctx));
            cube_avg.push("Fragment", fragment.compute(&ctx));
            let gold = corpus
                .gold_paths(i, j)
                .into_iter()
                .map(|(p, q)| (p.index(), q.index()))
                .collect();
            tasks.push(TaskData {
                source: i,
                target: j,
                gold,
                cube_avg,
                cube_dice,
            });
        }

        Harness {
            corpus,
            repository,
            tasks,
            default_results,
            library: MatcherLibrary::standard(),
        }
    }

    /// The corpus.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The repository (gold + automatic default mappings).
    pub fn repository(&self) -> &Repository {
        &self.repository
    }

    /// Pre-computed task data, in [`TASKS`] order.
    pub fn tasks(&self) -> &[TaskData] {
        &self.tasks
    }

    /// The default operation's match result per task.
    pub fn default_results(&self) -> &[MatchResult] {
        &self.default_results
    }

    /// The standard matcher library backing plan-aware evaluation.
    pub fn library(&self) -> &MatcherLibrary {
        &self.library
    }

    /// Plan-aware entry point: executes an arbitrary [`MatchPlan`] (staged
    /// filter→refine processes included) on one task with the plan engine
    /// and scores it against the gold standard.
    pub fn evaluate_plan_on_task(
        &self,
        plan: &MatchPlan,
        task: usize,
    ) -> coma_core::Result<(MatchQuality, MatchResult)> {
        let data = &self.tasks[task];
        let ctx = MatchContext::new(
            self.corpus.schema(data.source),
            self.corpus.schema(data.target),
            self.corpus.path_set(data.source),
            self.corpus.path_set(data.target),
            self.corpus.aux(),
        )
        .with_repository(&self.repository);
        let outcome = PlanEngine::new(&self.library).execute(&ctx, plan)?;
        let result = outcome.result;
        let quality = score_against_gold(&result, &data.gold);
        Ok((quality, result))
    }

    /// Runs a plan over all ten tasks, returning per-task qualities and
    /// their averages.
    pub fn evaluate_plan(
        &self,
        plan: &MatchPlan,
    ) -> coma_core::Result<(Vec<MatchQuality>, AverageQuality)> {
        let per_task: Vec<MatchQuality> = (0..self.tasks.len())
            .map(|t| self.evaluate_plan_on_task(plan, t).map(|(q, _)| q))
            .collect::<coma_core::Result<_>>()?;
        let average = AverageQuality::of(&per_task);
        Ok((per_task, average))
    }

    /// Runs one series on one task, returning the quality and the match
    /// result.
    pub fn evaluate_on_task(&self, spec: &SeriesSpec, task: usize) -> (MatchQuality, MatchResult) {
        let data = &self.tasks[task];
        let cube = match spec.combined_sim {
            CombinedSim::Average => &data.cube_avg,
            CombinedSim::Dice => &data.cube_dice,
        };
        let names: Vec<&str> = spec.matchers.iter().map(String::as_str).collect();
        let sub = cube.select(&names);
        assert_eq!(
            sub.len(),
            spec.matchers.len(),
            "series {} references a slice missing from the {} cube",
            spec.label(),
            spec.combined_sim
        );
        let ctx = MatchContext::new(
            self.corpus.schema(data.source),
            self.corpus.schema(data.target),
            self.corpus.path_set(data.source),
            self.corpus.path_set(data.target),
            self.corpus.aux(),
        );
        let combination = CombinationStrategy {
            aggregation: spec.aggregation.clone(),
            direction: spec.direction,
            selection: spec.selection.clone(),
            combined_sim: spec.combined_sim,
        };
        let result = combine_cube_with_feedback(
            &sub,
            &ctx,
            &combination,
            &coma_core::matchers::feedback::Feedback::new(),
        );
        let quality = score_against_gold(&result, &data.gold);
        (quality, result)
    }

    /// Runs one series over all ten tasks.
    pub fn evaluate(&self, spec: &SeriesSpec) -> SeriesResult {
        let per_task: Vec<MatchQuality> = (0..self.tasks.len())
            .map(|t| self.evaluate_on_task(spec, t).0)
            .collect();
        let average = AverageQuality::of(&per_task);
        SeriesResult {
            spec: spec.clone(),
            per_task,
            average,
        }
    }

    /// Runs many series in parallel (std scoped threads).
    pub fn run(&self, specs: &[SeriesSpec]) -> Vec<SeriesResult> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(specs.len().max(1));
        if threads <= 1 || specs.len() < 32 {
            return specs.iter().map(|s| self.evaluate(s)).collect();
        }
        let chunk = specs.len().div_ceil(threads);
        let mut out: Vec<Option<SeriesResult>> = vec![None; specs.len()];
        std::thread::scope(|scope| {
            for (slot, work) in out.chunks_mut(chunk).zip(specs.chunks(chunk)) {
                scope.spawn(move || {
                    for (o, spec) in slot.iter_mut().zip(work) {
                        *o = Some(self.evaluate(spec));
                    }
                });
            }
        });
        out.into_iter()
            .map(|r| r.expect("all slots filled"))
            .collect()
    }
}

impl Default for Harness {
    fn default() -> Self {
        Harness::new()
    }
}

/// Scores a match result against a gold standard of matrix-index pairs.
fn score_against_gold(result: &MatchResult, gold: &BTreeSet<(usize, usize)>) -> MatchQuality {
    let tp = result
        .candidates
        .iter()
        .filter(|c| gold.contains(&(c.source.index(), c.target.index())))
        .count();
    MatchQuality {
        true_positives: tp,
        false_positives: result.candidates.len() - tp,
        false_negatives: gold.len() - tp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coma_core::{Aggregation, Direction, Selection};

    fn spec(matchers: &[&str], reuse: bool) -> SeriesSpec {
        SeriesSpec {
            matchers: matchers.iter().map(|m| m.to_string()).collect(),
            aggregation: Aggregation::Average,
            direction: Direction::Both,
            selection: Selection::delta(0.02).with_threshold(0.5),
            combined_sim: CombinedSim::Average,
            reuse,
        }
    }

    // Harness construction computes 100+ matcher executions; the tests
    // below share one instance to keep `cargo test` fast.
    fn harness() -> &'static Harness {
        use std::sync::OnceLock;
        static H: OnceLock<Harness> = OnceLock::new();
        H.get_or_init(Harness::new)
    }

    #[test]
    fn default_all_combination_beats_single_name() {
        let h = harness();
        let all = h.evaluate(&spec(
            &["Name", "NamePath", "TypeName", "Children", "Leaves"],
            false,
        ));
        let name = h.evaluate(&spec(&["Name"], false));
        assert!(
            all.average.overall > name.average.overall,
            "All {:?} vs Name {:?}",
            all.average,
            name.average
        );
        assert!(all.average.overall > 0.0);
    }

    #[test]
    fn schema_m_reuse_is_strong() {
        let h = harness();
        let m = h.evaluate(&spec(&["SchemaM"], true));
        assert!(m.average.overall > 0.3, "SchemaM too weak: {:?}", m.average);
        // Reusing manual results beats reusing automatic ones.
        let a = h.evaluate(&spec(&["SchemaA"], true));
        assert!(
            m.average.overall >= a.average.overall,
            "SchemaM {:?} vs SchemaA {:?}",
            m.average,
            a.average
        );
    }

    #[test]
    fn per_task_and_average_are_consistent() {
        let h = harness();
        let r = h.evaluate(&spec(&["NamePath"], false));
        assert_eq!(r.per_task.len(), 10);
        let mean: f64 =
            r.per_task.iter().map(MatchQuality::overall).sum::<f64>() / r.per_task.len() as f64;
        assert!((mean - r.average.overall).abs() < 1e-12);
    }

    #[test]
    fn dice_cube_is_used_for_dice_series() {
        let h = harness();
        let mut s = spec(&["Leaves"], false);
        s.combined_sim = CombinedSim::Dice;
        let dice = h.evaluate(&s);
        s.combined_sim = CombinedSim::Average;
        let avg = h.evaluate(&s);
        // They must at least be computed from different slices.
        assert_ne!(dice.per_task, avg.per_task);
    }

    #[test]
    fn parallel_run_matches_serial() {
        let h = harness();
        let specs = vec![
            spec(&["Name"], false),
            spec(&["TypeName"], false),
            spec(&["NamePath", "Leaves"], false),
        ];
        let serial: Vec<SeriesResult> = specs.iter().map(|s| h.evaluate(s)).collect();
        let parallel = h.run(&specs);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.per_task, b.per_task);
        }
    }

    #[test]
    fn plan_evaluation_agrees_with_flat_series_and_supports_stages() {
        use coma_core::{MatchStrategy, Selection};
        let h = harness();

        // A flat All plan scores exactly like the pre-computed All series
        // (the engine reproduces the legacy pipeline bit for bit).
        let flat = MatchPlan::from(&MatchStrategy::paper_default());
        let (per_task, average) = h.evaluate_plan(&flat).unwrap();
        let series = h.evaluate(&spec(
            &["Name", "NamePath", "TypeName", "Children", "Leaves"],
            false,
        ));
        assert_eq!(per_task, series.per_task);
        assert!((average.overall - series.average.overall).abs() < 1e-12);

        // A two-stage filter→refine plan runs end to end and produces a
        // usable quality.
        let staged = MatchPlan::two_stage(
            ["Name"],
            Selection::max_n(6).with_threshold(0.3),
            &MatchStrategy::paper_default(),
        );
        let (staged_qualities, staged_avg) = h.evaluate_plan(&staged).unwrap();
        assert_eq!(staged_qualities.len(), 10);
        assert!(staged_avg.overall > 0.0, "{staged_avg:?}");
    }

    /// The new plan operators flow through the plan-aware evaluation
    /// entry points unchanged: a TopK-pruned two-stage plan and its
    /// iterated variant evaluate over the whole corpus.
    #[test]
    fn topk_and_iterate_plans_evaluate_on_the_corpus() {
        use coma_core::{MatchStrategy, TopKPer};
        let h = harness();
        let mut liberal = CombinationStrategy::paper_default();
        liberal.selection = Selection::max_n(6).with_threshold(0.3);
        let pruned = MatchPlan::matchers_with(["Name"], liberal)
            .top_k(3, TopKPer::Both)
            .unwrap();
        let plan = MatchPlan::seq(pruned, MatchPlan::from(&MatchStrategy::paper_default()));
        let (per_task, average) = h.evaluate_plan(&plan).unwrap();
        assert_eq!(per_task.len(), 10);
        assert!(average.overall > 0.0, "{average:?}");

        // The iterated variant terminates and produces a usable result.
        let looped = plan.iterate(3, 1e-6).unwrap();
        let (quality, result) = h.evaluate_plan_on_task(&looped, 0).unwrap();
        assert!(!result.is_empty());
        assert!(quality.overall() > 0.0, "{quality:?}");
    }

    #[test]
    fn repository_holds_manual_and_automatic_mappings() {
        let h = harness();
        assert_eq!(h.repository().mappings().len(), 20);
        let manual = h
            .repository()
            .mappings()
            .iter()
            .filter(|m| m.kind == MappingKind::Manual)
            .count();
        assert_eq!(manual, 10);
        assert_eq!(h.default_results().len(), 10);
        assert_eq!(h.corpus().schema(0).name(), crate::SCHEMA_NAMES[0]);
    }
}
