//! Ablation for Section 5.1: how the MatchCompose transitive-similarity
//! combination (Average vs the multiplication tradition vs Min/Max)
//! affects the Schema reuse matcher.
//!
//! Composing *manual* mappings is insensitive to the combination (all
//! similarities are 1.0, footnote 1 of the paper), so this ablation runs
//! on the **automatically derived** mappings of the default operation,
//! whose real-valued similarities expose the degradation argument.

use coma_core::{
    combine_cube_with_feedback, CombinationStrategy, ComposeCombine, MatchContext, Matcher,
    SchemaMatcher, SimCube,
};
use coma_eval::experiment::report::render_table;
use coma_eval::experiment::Harness;
use coma_eval::{AverageQuality, MatchQuality, TASKS};

fn main() {
    eprintln!("building harness (provides gold + automatic mappings)…");
    let harness = Harness::new();
    let corpus = harness.corpus();

    println!("MatchCompose ablation: SchemaA quality per transitive combination\n");
    let mut rows = Vec::new();
    for (label, compose) in [
        ("Average (paper)", ComposeCombine::Average),
        ("Multiply", ComposeCombine::Multiply),
        ("Min", ComposeCombine::Min),
        ("Max", ComposeCombine::Max),
    ] {
        let mut matcher = SchemaMatcher::automatic();
        matcher.compose = compose;
        let mut qualities = Vec::new();
        for (t, &(i, j)) in TASKS.iter().enumerate() {
            let ctx = MatchContext::new(
                corpus.schema(i),
                corpus.schema(j),
                corpus.path_set(i),
                corpus.path_set(j),
                corpus.aux(),
            )
            .with_repository(harness.repository());
            let mut cube = SimCube::new();
            cube.push("SchemaA", matcher.compute(&ctx));
            let result = combine_cube_with_feedback(
                &cube,
                &ctx,
                &CombinationStrategy::paper_default(),
                &coma_core::matchers::feedback::Feedback::new(),
            );
            let gold = &harness.tasks()[t].gold;
            let tp = result
                .candidates
                .iter()
                .filter(|c| gold.contains(&(c.source.index(), c.target.index())))
                .count();
            qualities.push(MatchQuality {
                true_positives: tp,
                false_positives: result.candidates.len() - tp,
                false_negatives: gold.len() - tp,
            });
        }
        let avg = AverageQuality::of(&qualities);
        rows.push(vec![
            label.to_string(),
            format!("{:.3}", avg.precision),
            format!("{:.3}", avg.recall),
            format!("{:.3}", avg.overall),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Compose combination",
                "avg Precision",
                "avg Recall",
                "avg Overall"
            ],
            &rows
        )
    );
    println!("Section 5.1's argument: multiplication degrades transitive");
    println!("similarities (0.5·0.7 = 0.35), pushing real matches under the 0.5");
    println!("threshold; Average retains them (→ 0.6).");
}
