use serde::{Deserialize, Serialize};

/// A dense `m × n` similarity matrix between `m` source elements and `n`
/// target elements. Values live in `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimMatrix {
    m: usize,
    n: usize,
    values: Vec<f64>,
}

impl SimMatrix {
    /// A zero-filled `m × n` matrix.
    pub fn new(m: usize, n: usize) -> SimMatrix {
        SimMatrix {
            m,
            n,
            values: vec![0.0; m * n],
        }
    }

    /// Number of source elements (rows).
    pub fn rows(&self) -> usize {
        self.m
    }

    /// Number of target elements (columns).
    pub fn cols(&self) -> usize {
        self.n
    }

    /// The value at (source `i`, target `j`).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.values[i * self.n + j]
    }

    /// Sets the value at (source `i`, target `j`), clamped to `[0, 1]`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        self.values[i * self.n + j] = value.clamp(0.0, 1.0);
    }

    /// Row `i` as a slice (similarities of source `i` to every target).
    pub fn row(&self, i: usize) -> &[f64] {
        &self.values[i * self.n..(i + 1) * self.n]
    }

    /// Row `i` as a mutable slice. Unlike [`SimMatrix::set`] this is raw
    /// access: callers writing through it are responsible for keeping
    /// values in `[0, 1]`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.values[i * self.n..(i + 1) * self.n]
    }

    /// Overwrites row `i` with `values` (one per column), clamping each to
    /// `[0, 1]` like [`SimMatrix::set`].
    #[inline]
    pub fn fill_row(&mut self, i: usize, values: &[f64]) {
        let row = self.row_mut(i);
        debug_assert_eq!(row.len(), values.len());
        for (dst, &v) in row.iter_mut().zip(values) {
            *dst = v.clamp(0.0, 1.0);
        }
    }

    /// Raw values in row-major order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The transposed matrix (targets become sources). The output is
    /// filled row-major so writes stay sequential in memory.
    pub fn transposed(&self) -> SimMatrix {
        let mut t = SimMatrix::new(self.n, self.m);
        for j in 0..self.n {
            let row = t.row_mut(j);
            for (i, dst) in row.iter_mut().enumerate() {
                *dst = self.values[i * self.n + j];
            }
        }
        t
    }

    /// The max-norm distance to another matrix of identical dimensions:
    /// the largest absolute cell-wise difference. Used by the plan
    /// engine's `Iterate` operator as its convergence measure.
    pub fn max_abs_diff(&self, other: &SimMatrix) -> f64 {
        assert_eq!(
            (self.m, self.n),
            (other.m, other.n),
            "matrix dimensions must agree"
        );
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Iterates over `(i, j, value)` of all cells with `value > 0`.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.m).flat_map(move |i| {
            (0..self.n).filter_map(move |j| {
                let v = self.get(i, j);
                (v > 0.0).then_some((i, j, v))
            })
        })
    }
}

/// The similarity cube: one [`SimMatrix`] slice per executed matcher
/// (paper, Section 3: "The result of the matcher execution phase with k
/// matchers, m S1 elements and n S2 elements is a k × m × n cube").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimCube {
    matcher_names: Vec<String>,
    slices: Vec<SimMatrix>,
}

impl SimCube {
    /// An empty cube (no matcher slices yet).
    pub fn new() -> SimCube {
        SimCube {
            matcher_names: Vec::new(),
            slices: Vec::new(),
        }
    }

    /// Adds a matcher's result slice. Panics if dimensions differ from the
    /// slices already present.
    pub fn push(&mut self, matcher_name: impl Into<String>, slice: SimMatrix) {
        if let Some(first) = self.slices.first() {
            assert_eq!(
                (first.rows(), first.cols()),
                (slice.rows(), slice.cols()),
                "all cube slices must have identical dimensions"
            );
        }
        self.matcher_names.push(matcher_name.into());
        self.slices.push(slice);
    }

    /// Number of matcher slices (`k`).
    pub fn len(&self) -> usize {
        self.slices.len()
    }

    /// Whether the cube has no slices.
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }

    /// Matcher names in slice order.
    pub fn matcher_names(&self) -> &[String] {
        &self.matcher_names
    }

    /// The slice of matcher `k`.
    pub fn slice(&self, k: usize) -> &SimMatrix {
        &self.slices[k]
    }

    /// The slice for a matcher name.
    pub fn slice_named(&self, name: &str) -> Option<&SimMatrix> {
        self.matcher_names
            .iter()
            .position(|n| n == name)
            .map(|k| &self.slices[k])
    }

    /// Source dimension (`m`); 0 for an empty cube.
    pub fn rows(&self) -> usize {
        self.slices.first().map_or(0, SimMatrix::rows)
    }

    /// Target dimension (`n`); 0 for an empty cube.
    pub fn cols(&self) -> usize {
        self.slices.first().map_or(0, SimMatrix::cols)
    }

    /// A sub-cube containing only the named slices, in the given order.
    /// Unknown names are skipped.
    pub fn select(&self, names: &[&str]) -> SimCube {
        let mut out = SimCube::new();
        for &name in names {
            if let Some(k) = self.matcher_names.iter().position(|n| n == name) {
                out.push(name, self.slices[k].clone());
            }
        }
        out
    }
}

impl Default for SimCube {
    fn default() -> Self {
        SimCube::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(m: usize, n: usize, f: impl Fn(usize, usize) -> f64) -> SimMatrix {
        let mut mat = SimMatrix::new(m, n);
        for i in 0..m {
            for j in 0..n {
                mat.set(i, j, f(i, j));
            }
        }
        mat
    }

    #[test]
    fn matrix_get_set_clamp() {
        let mut m = SimMatrix::new(2, 3);
        m.set(0, 0, 0.5);
        m.set(1, 2, 7.0);
        m.set(0, 1, -1.0);
        assert_eq!(m.get(0, 0), 0.5);
        assert_eq!(m.get(1, 2), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn transpose_roundtrips() {
        let m = matrix(2, 3, |i, j| (i * 3 + j) as f64 / 10.0);
        let t = m.transposed();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), m.get(1, 2));
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn row_mut_and_fill_row_access_rows() {
        let mut m = SimMatrix::new(2, 3);
        m.row_mut(1)[2] = 0.9;
        assert_eq!(m.get(1, 2), 0.9);
        m.fill_row(0, &[0.1, 7.0, -2.0]);
        assert_eq!(m.row(0), &[0.1, 1.0, 0.0]);
    }

    #[test]
    fn nonzero_iterates_sparse_cells() {
        let mut m = SimMatrix::new(2, 2);
        m.set(0, 1, 0.3);
        m.set(1, 0, 0.7);
        let cells: Vec<_> = m.nonzero().collect();
        assert_eq!(cells, vec![(0, 1, 0.3), (1, 0, 0.7)]);
    }

    #[test]
    fn cube_push_and_lookup() {
        let mut cube = SimCube::new();
        cube.push("Name", matrix(2, 2, |_, _| 0.5));
        cube.push(
            "TypeName",
            matrix(2, 2, |i, j| if i == j { 1.0 } else { 0.0 }),
        );
        assert_eq!(cube.len(), 2);
        assert_eq!(cube.rows(), 2);
        assert_eq!(cube.slice_named("TypeName").unwrap().get(0, 0), 1.0);
        assert!(cube.slice_named("nope").is_none());
        let sub = cube.select(&["TypeName"]);
        assert_eq!(sub.len(), 1);
        assert_eq!(sub.matcher_names(), &["TypeName".to_string()]);
    }

    #[test]
    #[should_panic(expected = "identical dimensions")]
    fn cube_rejects_mismatched_slices() {
        let mut cube = SimCube::new();
        cube.push("a", SimMatrix::new(2, 2));
        cube.push("b", SimMatrix::new(3, 2));
    }
}
