use crate::ast::{ColumnDef, CreateTable, TableConstraint};
use crate::error::{Result, SqlError};
use crate::lexer::{lex, Token, TokenKind};

/// Parses a DDL script into its `CREATE TABLE` statements.
///
/// ```
/// let tables = coma_sql::parse_ddl(
///     "CREATE TABLE PO1.Customer (custNo INT, custName VARCHAR(200), PRIMARY KEY (custNo));",
/// ).unwrap();
/// assert_eq!(tables[0].qualified_name(), "PO1.Customer");
/// assert!(tables[0].columns[0].primary_key);
/// ```
pub fn parse_ddl(input: &str) -> Result<Vec<CreateTable>> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut tables = Vec::new();
    while !p.at_end() {
        if p.eat_kind(&TokenKind::Semicolon) {
            continue;
        }
        tables.push(p.parse_create_table()?);
    }
    Ok(tables)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or(0, |t| t.offset)
    }

    fn advance(&mut self) -> Option<&TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| &t.kind);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kind(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|k| k.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::syntax(self.offset(), format!("expected `{kw}`")))
        }
    }

    fn expect_kind(&mut self, kind: TokenKind, what: &str) -> Result<()> {
        if self.eat_kind(&kind) {
            Ok(())
        } else {
            Err(SqlError::syntax(self.offset(), format!("expected {what}")))
        }
    }

    fn expect_word(&mut self) -> Result<String> {
        let offset = self.offset();
        match self.advance() {
            Some(TokenKind::Word(w)) => Ok(w.clone()),
            _ => Err(SqlError::syntax(offset, "expected an identifier")),
        }
    }

    /// `name` or `schema.name`.
    fn parse_qualified_name(&mut self) -> Result<(Option<String>, String)> {
        let first = self.expect_word()?;
        if self.eat_kind(&TokenKind::Dot) {
            let second = self.expect_word()?;
            Ok((Some(first), second))
        } else {
            Ok((None, first))
        }
    }

    fn parse_create_table(&mut self) -> Result<CreateTable> {
        self.expect_kw("CREATE")?;
        self.expect_kw("TABLE")?;
        let (schema, name) = self.parse_qualified_name()?;
        self.expect_kind(TokenKind::LParen, "`(` after table name")?;

        let mut table = CreateTable {
            schema,
            name,
            columns: Vec::new(),
            constraints: Vec::new(),
        };
        loop {
            if self.peek().is_some_and(|k| {
                k.is_kw("PRIMARY")
                    || k.is_kw("FOREIGN")
                    || k.is_kw("UNIQUE")
                    || k.is_kw("CONSTRAINT")
            }) {
                let c = self.parse_table_constraint()?;
                table.constraints.push(c);
            } else {
                table.columns.push(self.parse_column()?);
            }
            if self.eat_kind(&TokenKind::Comma) {
                continue;
            }
            self.expect_kind(TokenKind::RParen, "`,` or `)` in column list")?;
            break;
        }
        // Optional trailing semicolon is consumed by the caller loop.
        self.apply_pk_constraints(&mut table);
        Ok(table)
    }

    fn parse_column(&mut self) -> Result<ColumnDef> {
        let name = self.expect_word()?;
        let mut sql_type = self.expect_word()?;
        // Multi-word types: DOUBLE PRECISION, CHARACTER VARYING, …
        while self
            .peek()
            .is_some_and(|k| k.is_kw("PRECISION") || k.is_kw("VARYING"))
        {
            if let Some(TokenKind::Word(w)) = self.advance() {
                sql_type.push(' ');
                sql_type.push_str(w);
            }
        }
        // Type arguments: (200) or (10, 2).
        if self.eat_kind(&TokenKind::LParen) {
            sql_type.push('(');
            let mut first = true;
            loop {
                match self.advance() {
                    Some(TokenKind::Number(n)) => {
                        if !first {
                            sql_type.push(',');
                        }
                        sql_type.push_str(n);
                        first = false;
                    }
                    Some(TokenKind::Comma) => {}
                    Some(TokenKind::RParen) => break,
                    _ => return Err(SqlError::syntax(self.offset(), "bad type arguments")),
                }
            }
            sql_type.push(')');
        }

        let mut col = ColumnDef {
            name,
            sql_type,
            not_null: false,
            primary_key: false,
            references: None,
        };
        // Column options in any order.
        loop {
            if self.eat_kw("NOT") {
                self.expect_kw("NULL")?;
                col.not_null = true;
            } else if self.eat_kw("NULL") {
                // explicit nullable — nothing to record
            } else if self.eat_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                col.primary_key = true;
                col.not_null = true;
            } else if self.eat_kw("UNIQUE") {
                // recorded only at table level; ignore for columns
            } else if self.eat_kw("DEFAULT") {
                // Skip a single literal/word default value.
                match self.advance() {
                    Some(TokenKind::Number(_) | TokenKind::Str(_) | TokenKind::Word(_)) => {}
                    _ => return Err(SqlError::syntax(self.offset(), "bad DEFAULT value")),
                }
            } else if self.eat_kw("REFERENCES") {
                let (schema, table) = self.parse_qualified_name()?;
                col.references = Some(match schema {
                    Some(s) => format!("{s}.{table}"),
                    None => table,
                });
                // Optional referenced column list.
                if self.eat_kind(&TokenKind::LParen) {
                    while !self.eat_kind(&TokenKind::RParen) {
                        if self.advance().is_none() {
                            return Err(SqlError::syntax(
                                self.offset(),
                                "unterminated REFERENCES column list",
                            ));
                        }
                    }
                }
            } else {
                break;
            }
        }
        Ok(col)
    }

    fn parse_table_constraint(&mut self) -> Result<TableConstraint> {
        // Optional `CONSTRAINT name` prefix.
        if self.eat_kw("CONSTRAINT") {
            let _ = self.expect_word()?;
        }
        if self.eat_kw("PRIMARY") {
            self.expect_kw("KEY")?;
            Ok(TableConstraint::PrimaryKey(self.parse_column_list()?))
        } else if self.eat_kw("UNIQUE") {
            Ok(TableConstraint::Unique(self.parse_column_list()?))
        } else if self.eat_kw("FOREIGN") {
            self.expect_kw("KEY")?;
            let columns = self.parse_column_list()?;
            self.expect_kw("REFERENCES")?;
            let (schema, table) = self.parse_qualified_name()?;
            let table = match schema {
                Some(s) => format!("{s}.{table}"),
                None => table,
            };
            if self.eat_kind(&TokenKind::LParen) {
                while !self.eat_kind(&TokenKind::RParen) {
                    if self.advance().is_none() {
                        return Err(SqlError::syntax(
                            self.offset(),
                            "unterminated REFERENCES column list",
                        ));
                    }
                }
            }
            Ok(TableConstraint::ForeignKey { columns, table })
        } else {
            Err(SqlError::syntax(self.offset(), "unsupported constraint"))
        }
    }

    fn parse_column_list(&mut self) -> Result<Vec<String>> {
        self.expect_kind(TokenKind::LParen, "`(` before column list")?;
        let mut cols = vec![self.expect_word()?];
        while self.eat_kind(&TokenKind::Comma) {
            cols.push(self.expect_word()?);
        }
        self.expect_kind(TokenKind::RParen, "`)` after column list")?;
        Ok(cols)
    }

    /// Marks columns named by table-level `PRIMARY KEY` constraints.
    fn apply_pk_constraints(&self, table: &mut CreateTable) {
        let pk_cols: Vec<String> = table
            .constraints
            .iter()
            .flat_map(|c| match c {
                TableConstraint::PrimaryKey(cols) => cols.clone(),
                _ => Vec::new(),
            })
            .collect();
        for col in &mut table.columns {
            if pk_cols.iter().any(|c| c.eq_ignore_ascii_case(&col.name)) {
                col.primary_key = true;
                col.not_null = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The PO1 schema from Figure 1 of the paper, verbatim.
    pub const PO1_DDL: &str = r#"
CREATE TABLE PO1.ShipTo (
    poNo INT,
    custNo INT REFERENCES PO1.Customer,
    shipToStreet VARCHAR(200),
    shipToCity VARCHAR(200),
    shipToZip VARCHAR(20),
    PRIMARY KEY (poNo)
);
CREATE TABLE PO1.Customer (
    custNo INT,
    custName VARCHAR(200),
    custStreet VARCHAR(200),
    custCity VARCHAR(200),
    custZip VARCHAR(20),
    PRIMARY KEY (custNo)
);"#;

    #[test]
    fn parses_paper_po1() {
        let tables = parse_ddl(PO1_DDL).unwrap();
        assert_eq!(tables.len(), 2);
        let ship_to = &tables[0];
        assert_eq!(ship_to.qualified_name(), "PO1.ShipTo");
        assert_eq!(ship_to.columns.len(), 5);
        assert_eq!(
            ship_to.columns[1].references.as_deref(),
            Some("PO1.Customer")
        );
        assert!(ship_to.columns[0].primary_key); // via table constraint
        assert_eq!(ship_to.columns[2].sql_type, "VARCHAR(200)");
    }

    #[test]
    fn parses_foreign_key_constraint() {
        let tables = parse_ddl(
            "CREATE TABLE a (x INT, FOREIGN KEY (x) REFERENCES b (y));
             CREATE TABLE b (y INT PRIMARY KEY);",
        )
        .unwrap();
        assert_eq!(
            tables[0].constraints[0],
            TableConstraint::ForeignKey {
                columns: vec!["x".into()],
                table: "b".into()
            }
        );
        assert!(tables[1].columns[0].primary_key);
    }

    #[test]
    fn parses_column_options() {
        let tables = parse_ddl(
            "CREATE TABLE t (a VARCHAR(10) NOT NULL DEFAULT 'x', b DECIMAL(10,2) NULL, c DOUBLE PRECISION);",
        )
        .unwrap();
        let t = &tables[0];
        assert!(t.columns[0].not_null);
        assert_eq!(t.columns[1].sql_type, "DECIMAL(10,2)");
        assert_eq!(t.columns[2].sql_type, "DOUBLE PRECISION");
    }

    #[test]
    fn parses_quoted_identifiers() {
        let tables = parse_ddl(r#"CREATE TABLE "my table" ("my col" INT);"#).unwrap();
        assert_eq!(tables[0].name, "my table");
        assert_eq!(tables[0].columns[0].name, "my col");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_ddl("DROP TABLE x;").is_err());
        assert!(parse_ddl("CREATE TABLE x (").is_err());
        assert!(parse_ddl("CREATE TABLE x (a INT").is_err());
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(parse_ddl("").unwrap().is_empty());
        assert!(parse_ddl("  ;;  -- nothing\n").unwrap().is_empty());
    }
}
