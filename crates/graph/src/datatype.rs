use serde::{Deserialize, Serialize};
use std::fmt;

/// Generic data types shared by all schema importers.
///
/// COMA's `DataType` matcher "uses a synonym table specifying the degree of
/// compatibility between a set of predefined generic data types, to which
/// data types of schema elements are mapped" (paper, Section 4.1). The
/// importers (`coma-xml`, `coma-sql`) map concrete type names — `xsd:decimal`,
/// `VARCHAR(200)` — onto this enum; the compatibility table itself lives with
/// the matcher so it stays configurable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DataType {
    /// Character data of any length (`VARCHAR`, `xsd:string`, …).
    Text,
    /// Whole numbers (`INT`, `xsd:integer`, `xsd:long`, …).
    Integer,
    /// Exact decimal numbers (`DECIMAL`, `NUMERIC`, `xsd:decimal`).
    Decimal,
    /// Binary floating point (`FLOAT`, `REAL`, `xsd:double`).
    Float,
    /// Truth values (`BOOLEAN`, `xsd:boolean`).
    Boolean,
    /// Calendar dates (`DATE`, `xsd:date`).
    Date,
    /// Time of day (`TIME`, `xsd:time`).
    Time,
    /// Combined date and time (`TIMESTAMP`, `xsd:dateTime`).
    DateTime,
    /// Time spans (`INTERVAL`, `xsd:duration`).
    Duration,
    /// Raw bytes (`BLOB`, `xsd:base64Binary`).
    Binary,
    /// Uniform resource identifiers (`xsd:anyURI`).
    Uri,
    /// Document-unique identifiers (`xsd:ID`).
    Id,
    /// References to identifiers (`xsd:IDREF`).
    IdRef,
    /// Unconstrained / unknown type (`xsd:anyType`, unparsed SQL types).
    Any,
}

impl DataType {
    /// All generic types, in a stable order (useful for compatibility
    /// tables and exhaustive tests).
    pub const ALL: [DataType; 14] = [
        DataType::Text,
        DataType::Integer,
        DataType::Decimal,
        DataType::Float,
        DataType::Boolean,
        DataType::Date,
        DataType::Time,
        DataType::DateTime,
        DataType::Duration,
        DataType::Binary,
        DataType::Uri,
        DataType::Id,
        DataType::IdRef,
        DataType::Any,
    ];

    /// Maps an XML Schema built-in type name (with or without the `xsd:`
    /// prefix) onto a generic type. Unknown names map to [`DataType::Any`].
    pub fn from_xsd(name: &str) -> DataType {
        let local = name.rsplit(':').next().unwrap_or(name);
        match local {
            "string" | "normalizedString" | "token" | "language" | "Name" | "NCName"
            | "NMTOKEN" | "QName" => DataType::Text,
            "integer" | "int" | "long" | "short" | "byte" | "nonNegativeInteger"
            | "positiveInteger" | "nonPositiveInteger" | "negativeInteger" | "unsignedLong"
            | "unsignedInt" | "unsignedShort" | "unsignedByte" => DataType::Integer,
            "decimal" => DataType::Decimal,
            "float" | "double" => DataType::Float,
            "boolean" => DataType::Boolean,
            "date" | "gYear" | "gYearMonth" | "gMonth" | "gMonthDay" | "gDay" => DataType::Date,
            "time" => DataType::Time,
            "dateTime" => DataType::DateTime,
            "duration" => DataType::Duration,
            "base64Binary" | "hexBinary" => DataType::Binary,
            "anyURI" => DataType::Uri,
            "ID" => DataType::Id,
            "IDREF" | "IDREFS" | "ENTITY" | "ENTITIES" => DataType::IdRef,
            _ => DataType::Any,
        }
    }

    /// Maps a SQL type name (the identifier before any `(length)` suffix)
    /// onto a generic type. Unknown names map to [`DataType::Any`].
    pub fn from_sql(name: &str) -> DataType {
        let base = name
            .split(|c: char| c == '(' || c.is_whitespace())
            .next()
            .unwrap_or(name)
            .to_ascii_uppercase();
        match base.as_str() {
            "CHAR" | "VARCHAR" | "CHARACTER" | "TEXT" | "CLOB" | "NCHAR" | "NVARCHAR"
            | "STRING" => DataType::Text,
            "INT" | "INTEGER" | "SMALLINT" | "BIGINT" | "TINYINT" | "SERIAL" => DataType::Integer,
            "DECIMAL" | "NUMERIC" | "NUMBER" | "MONEY" => DataType::Decimal,
            "FLOAT" | "REAL" | "DOUBLE" => DataType::Float,
            "BOOLEAN" | "BOOL" | "BIT" => DataType::Boolean,
            "DATE" => DataType::Date,
            "TIME" => DataType::Time,
            "TIMESTAMP" | "DATETIME" => DataType::DateTime,
            "INTERVAL" => DataType::Duration,
            "BLOB" | "BINARY" | "VARBINARY" | "BYTEA" => DataType::Binary,
            _ => DataType::Any,
        }
    }

    /// Returns `true` for types holding numbers of any representation.
    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            DataType::Integer | DataType::Decimal | DataType::Float
        )
    }

    /// Returns `true` for types holding temporal values.
    pub fn is_temporal(self) -> bool {
        matches!(
            self,
            DataType::Date | DataType::Time | DataType::DateTime | DataType::Duration
        )
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DataType::Text => "text",
            DataType::Integer => "integer",
            DataType::Decimal => "decimal",
            DataType::Float => "float",
            DataType::Boolean => "boolean",
            DataType::Date => "date",
            DataType::Time => "time",
            DataType::DateTime => "dateTime",
            DataType::Duration => "duration",
            DataType::Binary => "binary",
            DataType::Uri => "uri",
            DataType::Id => "id",
            DataType::IdRef => "idref",
            DataType::Any => "any",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xsd_builtins_map_to_generic_types() {
        assert_eq!(DataType::from_xsd("xsd:string"), DataType::Text);
        assert_eq!(DataType::from_xsd("string"), DataType::Text);
        assert_eq!(DataType::from_xsd("xs:decimal"), DataType::Decimal);
        assert_eq!(DataType::from_xsd("xsd:int"), DataType::Integer);
        assert_eq!(DataType::from_xsd("xsd:dateTime"), DataType::DateTime);
        assert_eq!(DataType::from_xsd("xsd:anyURI"), DataType::Uri);
        assert_eq!(DataType::from_xsd("myCustomType"), DataType::Any);
    }

    #[test]
    fn sql_types_map_to_generic_types() {
        assert_eq!(DataType::from_sql("VARCHAR(200)"), DataType::Text);
        assert_eq!(DataType::from_sql("varchar"), DataType::Text);
        assert_eq!(DataType::from_sql("INT"), DataType::Integer);
        assert_eq!(DataType::from_sql("DECIMAL(10,2)"), DataType::Decimal);
        assert_eq!(DataType::from_sql("TIMESTAMP"), DataType::DateTime);
        assert_eq!(DataType::from_sql("GEOMETRY"), DataType::Any);
    }

    #[test]
    fn numeric_and_temporal_predicates() {
        assert!(DataType::Integer.is_numeric());
        assert!(DataType::Decimal.is_numeric());
        assert!(!DataType::Text.is_numeric());
        assert!(DataType::Date.is_temporal());
        assert!(!DataType::Binary.is_temporal());
    }

    #[test]
    fn all_contains_every_display_name_once() {
        let mut names: Vec<String> = DataType::ALL.iter().map(|t| t.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), DataType::ALL.len());
    }
}
