//! End-to-end tests over a real unix socket: schema storage, matching,
//! repository persistence across a server restart, the cross-request
//! memo speedup, and concurrent client sessions.

use coma_repo::FileBackend;
use coma_server::{
    Client, InlineSchema, MatchConfig, MatchRequest, PlanSpec, Request, Response, ReuseSpec,
    SchemaFormat, SchemaRef, Server, ServerState,
};
use std::path::PathBuf;
use std::time::Duration;

/// A unique temp path that does not collide across test binaries.
fn temp_path(name: &str, ext: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("coma_server_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{}_{}.{ext}", name, std::process::id()));
    std::fs::remove_file(&path).ok();
    path
}

/// A generated DDL schema: `tables` CREATE TABLE statements with
/// `columns` columns each, names drawn from a fixed vocabulary so two
/// schemas built with different `variant` values still overlap enough
/// for name matchers to do real work.
fn big_ddl(tables: usize, columns: usize, variant: &str) -> String {
    const STEMS: [&str; 12] = [
        "customer", "order", "ship", "bill", "product", "price", "city", "street", "phone",
        "status", "total", "delivery",
    ];
    let mut ddl = String::new();
    for t in 0..tables {
        ddl.push_str(&format!(
            "CREATE TABLE {}{}{} (\n",
            STEMS[t % STEMS.len()],
            variant,
            t
        ));
        for c in 0..columns {
            if c > 0 {
                ddl.push_str(",\n");
            }
            ddl.push_str(&format!(
                "  {}{}{} VARCHAR(200)",
                STEMS[(t + c) % STEMS.len()],
                variant,
                c
            ));
        }
        ddl.push_str("\n);\n");
    }
    ddl
}

fn inline(name: &str, tables: usize, columns: usize, variant: &str) -> InlineSchema {
    InlineSchema {
        name: name.to_string(),
        format: SchemaFormat::Sql,
        text: big_ddl(tables, columns, variant),
    }
}

fn match_request(tenant: &str, source: SchemaRef, target: SchemaRef, store: bool) -> Request {
    Request::Match(MatchRequest {
        tenant: tenant.to_string(),
        source,
        target,
        plan: PlanSpec::Default,
        config: MatchConfig::default(),
        store,
    })
}

/// Serves `state` on a fresh socket in a background thread; returns the
/// socket path and a join handle that resolves when the server drains.
fn spawn_server(state: ServerState, tag: &str) -> (PathBuf, std::thread::JoinHandle<()>) {
    let socket = temp_path(tag, "sock");
    let server = Server::bind(&socket, state).unwrap();
    let handle = std::thread::spawn(move || server.serve().unwrap());
    (socket, handle)
}

fn connect(socket: &PathBuf) -> Client {
    Client::connect_retry(socket, Duration::from_secs(5)).unwrap()
}

#[test]
fn socket_round_trip_stores_schemas_and_matches() {
    let store = temp_path("round_trip_store", "json");
    let state = ServerState::open(FileBackend::new(&store), 8).unwrap();
    let (socket, handle) = spawn_server(state, "round_trip");
    let mut client = connect(&socket);

    assert_eq!(client.call(&Request::Ping).unwrap(), Response::Pong);

    let stored = client
        .call_ok(&Request::PutSchema(
            "acme".to_string(),
            inline("PO_src", 4, 6, "A"),
        ))
        .unwrap();
    let Response::SchemaStored(info) = stored else {
        panic!("expected SchemaStored, got {stored:?}");
    };
    assert_eq!(info.name, "PO_src");
    assert!(info.paths > 0);

    client
        .call_ok(&Request::PutSchema(
            "acme".to_string(),
            inline("PO_tgt", 4, 6, "B"),
        ))
        .unwrap();

    let matched = client
        .call_ok(&match_request(
            "acme",
            SchemaRef::Stored("PO_src".to_string()),
            SchemaRef::Stored("PO_tgt".to_string()),
            true,
        ))
        .unwrap();
    let Response::Matched(response) = matched else {
        panic!("expected Matched, got {matched:?}");
    };
    assert_eq!(response.source, "PO_src");
    assert_eq!(response.target, "PO_tgt");
    assert!(
        !response.correspondences.is_empty(),
        "overlapping vocabularies must produce correspondences"
    );
    // Ranked: similarities are non-increasing.
    for pair in response.correspondences.windows(2) {
        assert!(pair[0].similarity >= pair[1].similarity);
    }

    let stats = client.call_ok(&Request::Stats("acme".to_string())).unwrap();
    let Response::Stats(stats) = stats else {
        panic!("expected Stats, got {stats:?}");
    };
    assert_eq!(stats.schemas, 2);
    assert_eq!(stats.mappings, 1, "store=true must persist the mapping");

    client.call(&Request::Shutdown).unwrap();
    handle.join().unwrap();
    std::fs::remove_file(&store).ok();
}

#[test]
fn repository_survives_server_restart() {
    let store = temp_path("restart_store", "json");

    // First server: store two schemas and one mapping, then shut down.
    {
        let state = ServerState::open(FileBackend::new(&store), 8).unwrap();
        let (socket, handle) = spawn_server(state, "restart_a");
        let mut client = connect(&socket);
        client
            .call_ok(&Request::PutSchema(
                "acme".to_string(),
                inline("Inv_src", 3, 5, "A"),
            ))
            .unwrap();
        client
            .call_ok(&Request::PutSchema(
                "acme".to_string(),
                inline("Inv_tgt", 3, 5, "B"),
            ))
            .unwrap();
        client
            .call_ok(&match_request(
                "acme",
                SchemaRef::Stored("Inv_src".to_string()),
                SchemaRef::Stored("Inv_tgt".to_string()),
                true,
            ))
            .unwrap();
        client.call(&Request::Shutdown).unwrap();
        handle.join().unwrap();
    }

    // Second server over the same store file: everything is still there
    // and stored schemas are matchable without re-uploading.
    {
        let state = ServerState::open(FileBackend::new(&store), 8).unwrap();
        let (socket, handle) = spawn_server(state, "restart_b");
        let mut client = connect(&socket);

        let listed = client
            .call_ok(&Request::ListSchemas("acme".to_string()))
            .unwrap();
        let Response::Schemas(mut names) = listed else {
            panic!("expected Schemas, got {listed:?}");
        };
        names.sort();
        assert_eq!(names, vec!["Inv_src".to_string(), "Inv_tgt".to_string()]);

        let fetched = client
            .call_ok(&Request::GetSchema(
                "acme".to_string(),
                "Inv_src".to_string(),
            ))
            .unwrap();
        let Response::Schema(info) = fetched else {
            panic!("expected Schema, got {fetched:?}");
        };
        assert_eq!(info.name, "Inv_src");
        assert!(info.nodes > 0 && info.paths > 0);

        let matched = client
            .call_ok(&match_request(
                "acme",
                SchemaRef::Stored("Inv_src".to_string()),
                SchemaRef::Stored("Inv_tgt".to_string()),
                false,
            ))
            .unwrap();
        let Response::Matched(response) = matched else {
            panic!("expected Matched, got {matched:?}");
        };
        assert!(!response.correspondences.is_empty());

        let stats = client.call_ok(&Request::Stats("acme".to_string())).unwrap();
        let Response::Stats(stats) = stats else {
            panic!("expected Stats, got {stats:?}");
        };
        assert_eq!(stats.schemas, 2);
        assert_eq!(stats.mappings, 1);

        client.call(&Request::Shutdown).unwrap();
        handle.join().unwrap();
    }
    std::fs::remove_file(&store).ok();
}

#[test]
fn repeated_match_request_hits_the_cross_request_memo() {
    let state = ServerState::open(coma_repo::MemoryBackend::new(), 8).unwrap();
    let (socket, handle) = spawn_server(state, "memo");
    let mut client = connect(&socket);

    // Moderately sized pair so the first request does real work.
    client
        .call_ok(&Request::PutSchema(
            "acme".to_string(),
            inline("Big_src", 10, 10, "A"),
        ))
        .unwrap();
    client
        .call_ok(&Request::PutSchema(
            "acme".to_string(),
            inline("Big_tgt", 10, 10, "B"),
        ))
        .unwrap();
    let request = match_request(
        "acme",
        SchemaRef::Stored("Big_src".to_string()),
        SchemaRef::Stored("Big_tgt".to_string()),
        false,
    );

    let Response::Matched(cold) = client.call_ok(&request).unwrap() else {
        panic!("expected Matched");
    };
    let Response::Matched(warm) = client.call_ok(&request).unwrap() else {
        panic!("expected Matched");
    };

    // Identical input must give identical output…
    assert_eq!(cold.correspondences, warm.correspondences);
    // …and the repeat request must have hit the shared cache: matrix
    // misses stop growing while hits keep climbing.
    assert_eq!(
        warm.cache.matrix_misses, cold.cache.matrix_misses,
        "second request recomputed matrices it should have reused"
    );
    assert!(
        warm.cache.matrix_hits > cold.cache.matrix_hits,
        "second request never touched the cross-request cache"
    );
    // Wall time is noisy on a loaded box, so gate loosely: the warm
    // request must not be dramatically slower, and on a quiet machine
    // it is typically several times faster.
    assert!(
        warm.elapsed_micros <= cold.elapsed_micros.max(1) * 2,
        "warm request ({} us) slower than 2x cold ({} us)",
        warm.elapsed_micros,
        cold.elapsed_micros
    );

    client.call(&Request::Shutdown).unwrap();
    handle.join().unwrap();
}

#[test]
fn concurrent_clients_share_one_server() {
    let state = ServerState::open(coma_repo::MemoryBackend::new(), 8).unwrap();
    let (socket, handle) = spawn_server(state, "concurrent");

    // Deliberately stays connected (and idle) for the whole test: a
    // graceful shutdown must not wait forever on idle sessions.
    let mut setup = connect(&socket);
    setup
        .call_ok(&Request::PutSchema(
            "acme".to_string(),
            inline("Conc_src", 5, 6, "A"),
        ))
        .unwrap();
    setup
        .call_ok(&Request::PutSchema(
            "acme".to_string(),
            inline("Conc_tgt", 5, 6, "B"),
        ))
        .unwrap();

    let workers: Vec<_> = (0..4)
        .map(|_| {
            let socket = socket.clone();
            std::thread::spawn(move || {
                let mut client = connect(&socket);
                let mut counts = Vec::new();
                for _ in 0..3 {
                    let request = match_request(
                        "acme",
                        SchemaRef::Stored("Conc_src".to_string()),
                        SchemaRef::Stored("Conc_tgt".to_string()),
                        false,
                    );
                    let Response::Matched(response) = client.call_ok(&request).unwrap() else {
                        panic!("expected Matched");
                    };
                    counts.push(response.correspondences.len());
                }
                counts
            })
        })
        .collect();

    let all: Vec<Vec<usize>> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    let expected = all[0][0];
    assert!(expected > 0);
    for counts in &all {
        for &count in counts {
            assert_eq!(count, expected, "all sessions must see identical results");
        }
    }

    let mut client = connect(&socket);
    client.call(&Request::Shutdown).unwrap();
    handle.join().unwrap();
}

#[test]
fn reuse_round_trip_composes_stored_mappings_and_falls_back() {
    use coma_core::{
        Auxiliary, ComposeCombine, EngineConfig, MatchContext, MatchPlan, MatchStrategy,
        MatcherLibrary, PlanEngine,
    };
    use coma_graph::PathSet;
    use coma_repo::{MappingKind, Repository};

    let state = ServerState::open(coma_repo::MemoryBackend::new(), 8).unwrap();
    let (socket, handle) = spawn_server(state, "reuse");
    let mut client = connect(&socket);

    // Three schemas; S1↔S2 and S2↔S3 matched fresh and stored, so S2 is
    // the pivot connecting S1 to S3.
    for (name, variant) in [("S1", "A"), ("S2", "B"), ("S3", "C")] {
        client
            .call_ok(&Request::PutSchema(
                "acme".to_string(),
                inline(name, 3, 4, variant),
            ))
            .unwrap();
    }
    for (a, b) in [("S1", "S2"), ("S2", "S3")] {
        let Response::Matched(r) = client
            .call_ok(&match_request(
                "acme",
                SchemaRef::Stored(a.to_string()),
                SchemaRef::Stored(b.to_string()),
                true,
            ))
            .unwrap()
        else {
            panic!("expected Matched");
        };
        assert!(!r.correspondences.is_empty(), "{a}↔{b} must match fresh");
    }

    // Reuse request S1↔S3: answered from the stored-mapping graph.
    let Response::Matched(reused) = client
        .call_ok(&Request::Match(MatchRequest {
            tenant: "acme".to_string(),
            source: SchemaRef::Stored("S1".to_string()),
            target: SchemaRef::Stored("S3".to_string()),
            plan: PlanSpec::Reuse(ReuseSpec {
                kind: None,
                compose: ComposeCombine::Average,
                max_hops: 3,
            }),
            config: MatchConfig::default(),
            store: false,
        }))
        .unwrap()
    else {
        panic!("expected Matched");
    };
    assert_eq!(reused.reused, Some(true));
    assert_eq!(reused.reuse_path.as_deref(), Some("S2"));
    assert!(
        !reused.correspondences.is_empty(),
        "composition over the S2 pivot must carry correspondences"
    );

    // Replicate the whole pipeline in-process — same library, auxiliary
    // tables, engine defaults and plans — and require the server's reuse
    // answer bit-identically.
    let library = MatcherLibrary::standard();
    let aux = Auxiliary::standard();
    // The server runs `MatchConfig::default()` through its config
    // translation, which turns streaming fusion off.
    let engine_cfg = EngineConfig::default().with_fuse_pruning(false);
    let parse =
        |name: &str, variant: &str| coma_sql::import_ddl(&big_ddl(3, 4, variant), name).unwrap();
    let s1 = parse("S1", "A");
    let s2 = parse("S2", "B");
    let s3 = parse("S3", "C");
    let mut repo = Repository::new();
    for s in [&s1, &s2, &s3] {
        repo.put_schema(s.clone());
    }
    let fresh_plan = MatchPlan::from(&MatchStrategy::paper_default());
    for (src, tgt) in [(&s1, &s2), (&s2, &s3)] {
        let sp = PathSet::new(src).unwrap();
        let tp = PathSet::new(tgt).unwrap();
        let ctx = MatchContext::new(src, tgt, &sp, &tp, &aux).with_repository(&repo);
        let outcome = PlanEngine::with_config(&library, engine_cfg.clone())
            .execute(&ctx, &fresh_plan)
            .unwrap();
        let mapping = outcome.result.to_mapping(&ctx, MappingKind::Automatic);
        repo.put_mapping(mapping);
    }
    let sp = PathSet::new(&s1).unwrap();
    let tp = PathSet::new(&s3).unwrap();
    let ctx = MatchContext::new(&s1, &s3, &sp, &tp, &aux).with_repository(&repo);
    let reuse_plan = MatchPlan::reuse_chains(None, ComposeCombine::Average, 3).unwrap();
    let outcome = PlanEngine::with_config(&library, engine_cfg.clone())
        .execute(&ctx, &reuse_plan)
        .unwrap();
    let mapping = outcome.result.to_mapping(&ctx, MappingKind::Automatic);
    let mut local: Vec<(String, String, f64)> = mapping
        .correspondences
        .iter()
        .map(|c| (c.source.clone(), c.target.clone(), c.similarity))
        .collect();
    // The server's response ordering: similarity desc, then paths.
    local.sort_by(|a, b| {
        b.2.partial_cmp(&a.2)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
            .then_with(|| a.1.cmp(&b.1))
    });
    let wire: Vec<(String, String, f64)> = reused
        .correspondences
        .iter()
        .map(|c| (c.source_path.clone(), c.target_path.clone(), c.similarity))
        .collect();
    assert_eq!(local, wire, "server reuse must equal the in-process result");

    // No-path case: two fresh schemas with no stored mappings fall back
    // to fresh matching, flagged — not an error, not empty.
    for (name, variant) in [("X1", "A"), ("X2", "B")] {
        client
            .call_ok(&Request::PutSchema(
                "acme".to_string(),
                inline(name, 3, 4, variant),
            ))
            .unwrap();
    }
    let Response::Matched(fallback) = client
        .call_ok(&Request::Match(MatchRequest {
            tenant: "acme".to_string(),
            source: SchemaRef::Stored("X1".to_string()),
            target: SchemaRef::Stored("X2".to_string()),
            plan: PlanSpec::Reuse(ReuseSpec::default()),
            config: MatchConfig::default(),
            store: false,
        }))
        .unwrap()
    else {
        panic!("expected Matched");
    };
    assert_eq!(fallback.reused, Some(false));
    assert_eq!(fallback.reuse_path, None);
    assert!(
        !fallback.correspondences.is_empty(),
        "fallback must produce the fresh Default-plan result"
    );
    // Flagging is per-plan: a plain Default request reports no reuse info.
    let Response::Matched(plain) = client
        .call_ok(&match_request(
            "acme",
            SchemaRef::Stored("X1".to_string()),
            SchemaRef::Stored("X2".to_string()),
            false,
        ))
        .unwrap()
    else {
        panic!("expected Matched");
    };
    assert_eq!(plain.reused, None);
    assert_eq!(plain.correspondences, fallback.correspondences);

    client.call(&Request::Shutdown).unwrap();
    handle.join().unwrap();
}

#[test]
fn malformed_requests_get_error_responses_not_session_death() {
    let state = ServerState::open(coma_repo::MemoryBackend::new(), 8).unwrap();
    let (socket, handle) = spawn_server(state, "errors");
    let mut client = connect(&socket);

    // Unknown stored schema.
    let response = client
        .call(&match_request(
            "acme",
            SchemaRef::Stored("nope".to_string()),
            SchemaRef::Stored("also_nope".to_string()),
            false,
        ))
        .unwrap();
    assert!(matches!(response, Response::Error(_)));

    // Unparseable inline schema.
    let response = client
        .call(&Request::PutSchema(
            "acme".to_string(),
            InlineSchema {
                name: "bad".to_string(),
                format: SchemaFormat::Sql,
                text: "this is not DDL".to_string(),
            },
        ))
        .unwrap();
    assert!(matches!(response, Response::Error(_)));

    // Degenerate plan parameters are rejected by the pre-execution
    // analyzer with a structured frame pinning the offending node — the
    // plan never executes.
    let response = client
        .call(&Request::Match(MatchRequest {
            tenant: "acme".to_string(),
            source: SchemaRef::Inline(inline("x", 2, 2, "A")),
            target: SchemaRef::Inline(inline("y", 2, 2, "B")),
            plan: PlanSpec::TopKPruned(0),
            config: MatchConfig::default(),
            store: false,
        }))
        .unwrap();
    let Response::InvalidPlan(diagnostics) = response else {
        panic!("expected InvalidPlan, got {response:?}");
    };
    assert!(
        diagnostics.iter().any(|d| d.severity == "error"
            && d.code == "E_TOPK_ZERO"
            && d.node_path.contains("TopK")),
        "expected an E_TOPK_ZERO error diagnostic, got {diagnostics:?}"
    );

    // The session is still alive after all of that.
    assert_eq!(client.call(&Request::Ping).unwrap(), Response::Pong);

    client.call(&Request::Shutdown).unwrap();
    handle.join().unwrap();
}
