/// Common-affix similarity.
///
/// "This matcher looks for common affixes, i.e. both prefixes and suffixes,
/// between two name strings" (paper, Section 4.1).
///
/// The similarity is the share of characters covered by the longest common
/// prefix `p` and the longest common suffix `s` of the *remaining* string
/// (so prefix and suffix never overlap):
///
/// ```text
/// sim(a, b) = (|p| + |s|) / max(|a|, |b|)
/// ```
///
/// Comparison is case-insensitive. Examples: `shipToCity` vs `shipToZip`
/// share the prefix `shipTo`; `custCity` vs `shipToCity` share the suffix
/// `City`.
///
/// ```
/// use coma_strings::affix_similarity;
/// assert_eq!(affix_similarity("city", "city"), 1.0);
/// assert!(affix_similarity("shipToCity", "shipToZip") > 0.5);
/// assert_eq!(affix_similarity("abc", "xyz"), 0.0);
/// ```
pub fn affix_similarity(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().flat_map(char::to_lowercase).collect();
    let b: Vec<char> = b.chars().flat_map(char::to_lowercase).collect();
    match (a.is_empty(), b.is_empty()) {
        (true, true) => return 1.0,
        (true, false) | (false, true) => return 0.0,
        _ => {}
    }
    let min_len = a.len().min(b.len());
    let prefix = a.iter().zip(&b).take_while(|(x, y)| x == y).count();
    // Longest common suffix of the parts not consumed by the prefix.
    let max_suffix = min_len - prefix;
    let suffix = a
        .iter()
        .rev()
        .zip(b.iter().rev())
        .take(max_suffix)
        .take_while(|(x, y)| x == y)
        .count();
    (prefix + suffix) as f64 / a.len().max(b.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_are_1() {
        assert_eq!(affix_similarity("street", "street"), 1.0);
    }

    #[test]
    fn disjoint_strings_are_0() {
        assert_eq!(affix_similarity("abc", "xyz"), 0.0);
    }

    #[test]
    fn shared_prefix_counts() {
        // "ship" shared prefix over max len 8 → 0.5
        assert_eq!(affix_similarity("shipCity", "shipZips"), 0.5);
    }

    #[test]
    fn shared_suffix_counts() {
        // "City" shared suffix; "custCity" vs "shipToCity" → 4/10
        assert!((affix_similarity("custCity", "shipToCity") - 0.4).abs() < 1e-12);
    }

    #[test]
    fn prefix_and_suffix_do_not_overlap() {
        // "aaa" vs "aaaaa": prefix 3 exhausts the shorter string; suffix must
        // not double count → 3/5.
        assert!((affix_similarity("aaa", "aaaaa") - 0.6).abs() < 1e-12);
        // Full overlap with itself stays exactly 1.
        assert_eq!(affix_similarity("aaa", "aaa"), 1.0);
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(affix_similarity("ShipTo", "shipto"), 1.0);
    }

    #[test]
    fn empty_string_conventions() {
        assert_eq!(affix_similarity("", ""), 1.0);
        assert_eq!(affix_similarity("", "x"), 0.0);
    }
}
