use std::fmt;

/// Convenience result alias for XML/XSD operations.
pub type Result<T> = std::result::Result<T, XmlError>;

/// Errors from XML parsing, XSD interpretation, or graph import.
#[derive(Debug, Clone, PartialEq)]
pub enum XmlError {
    /// Malformed XML at the given byte offset.
    Syntax {
        /// Byte offset into the input where the problem was found.
        offset: usize,
        /// Description of the problem.
        message: String,
    },
    /// Structurally invalid document (mismatched tags, multiple roots, …).
    Structure {
        /// Description of the problem.
        message: String,
    },
    /// The document is well-formed XML but not a usable XML Schema.
    Xsd {
        /// Description of the problem.
        message: String,
    },
    /// Importing the schema into the graph representation failed.
    Graph(coma_graph::GraphError),
}

impl XmlError {
    pub(crate) fn syntax(offset: usize, message: impl Into<String>) -> XmlError {
        XmlError::Syntax {
            offset,
            message: message.into(),
        }
    }

    pub(crate) fn structure(message: impl Into<String>) -> XmlError {
        XmlError::Structure {
            message: message.into(),
        }
    }

    pub(crate) fn xsd(message: impl Into<String>) -> XmlError {
        XmlError::Xsd {
            message: message.into(),
        }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::Syntax { offset, message } => {
                write!(f, "XML syntax error at byte {offset}: {message}")
            }
            XmlError::Structure { message } => write!(f, "XML structure error: {message}"),
            XmlError::Xsd { message } => write!(f, "XSD error: {message}"),
            XmlError::Graph(e) => write!(f, "schema import error: {e}"),
        }
    }
}

impl std::error::Error for XmlError {}

impl From<coma_graph::GraphError> for XmlError {
    fn from(e: coma_graph::GraphError) -> XmlError {
        XmlError::Graph(e)
    }
}
