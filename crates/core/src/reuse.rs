//! Reuse of previous match results (paper, Section 5): the
//! [`match_compose`] operation and the reuse-oriented matchers
//! [`SchemaMatcher`] (`SchemaM` / `SchemaA`) and [`FragmentMatcher`].

use crate::combine::Aggregation;
use crate::cube::{SimCube, SimMatrix};
use crate::matchers::context::MatchContext;
use crate::matchers::Matcher;
use coma_repo::{Mapping, MappingKind};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How the two similarities of a transitive chain `a↔b↔c` are combined by
/// MatchCompose. The paper (Section 5.1) argues that the common
/// multiplication approach "may lead to rapidly degrading similarity
/// values" (0.5·0.7 = 0.35) and prefers Average (→ 0.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComposeCombine {
    /// `(s1 + s2) / 2` — the paper's choice.
    Average,
    /// `s1 · s2` — the information-retrieval tradition; degrades quickly.
    Multiply,
    /// `min(s1, s2)` — pessimistic.
    Min,
    /// `max(s1, s2)` — optimistic.
    Max,
}

impl ComposeCombine {
    /// Applies the combination to a pair of similarities.
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ComposeCombine::Average => (a + b) / 2.0,
            ComposeCombine::Multiply => a * b,
            ComposeCombine::Min => a.min(b),
            ComposeCombine::Max => a.max(b),
        }
    }
}

/// The MatchCompose operation: derives `match: S1↔S3` from
/// `match1: S1↔S2` and `match2: S2↔S3` by a natural join on the shared S2
/// elements (Section 5.1, Figure 3).
pub fn match_compose(m1: &Mapping, m2: &Mapping, combine: ComposeCombine) -> Mapping {
    m1.compose(m2, |a, b| combine.apply(a, b))
}

/// The `Schema` reuse matcher (Section 5.2, Figure 5): searches the
/// repository for pivot schemas `S` with stored results `S1↔S` and `S↔S2`,
/// MatchComposes each pair, and aggregates the composed results into one
/// similarity matrix (one slice per composed mapping; missing pairs count
/// as similarity 0, so pairs found via many pivots dominate — this is what
/// "compensates the problem of false n:m matches" in Section 7.3).
pub struct SchemaMatcher {
    name: String,
    /// Restricts which stored mappings qualify (`None` = all).
    pub kind_filter: Option<MappingKind>,
    /// Transitive-similarity combination (default Average).
    pub compose: ComposeCombine,
    /// Aggregation across multiple composed results (default Average).
    pub aggregation: Aggregation,
}

impl SchemaMatcher {
    /// `SchemaM`: reuses manually confirmed match results.
    pub fn manual() -> SchemaMatcher {
        SchemaMatcher {
            name: "SchemaM".into(),
            kind_filter: Some(MappingKind::Manual),
            compose: ComposeCombine::Average,
            aggregation: Aggregation::Average,
        }
    }

    /// `SchemaA`: reuses automatically derived match results.
    pub fn automatic() -> SchemaMatcher {
        SchemaMatcher {
            name: "SchemaA".into(),
            kind_filter: Some(MappingKind::Automatic),
            compose: ComposeCombine::Average,
            aggregation: Aggregation::Average,
        }
    }

    /// A custom variant.
    pub fn with_name(name: impl Into<String>, kind_filter: Option<MappingKind>) -> SchemaMatcher {
        SchemaMatcher {
            name: name.into(),
            kind_filter,
            compose: ComposeCombine::Average,
            aggregation: Aggregation::Average,
        }
    }

    /// Converts a (full-name keyed) mapping into a matrix for this task.
    /// Correspondences naming unknown paths are ignored.
    fn mapping_to_matrix(
        mapping: &Mapping,
        src_index: &HashMap<String, usize>,
        tgt_index: &HashMap<String, usize>,
        rows: usize,
        cols: usize,
    ) -> SimMatrix {
        let mut m = SimMatrix::new(rows, cols);
        for c in &mapping.correspondences {
            if let (Some(&i), Some(&j)) = (src_index.get(&c.source), tgt_index.get(&c.target)) {
                // Keep the best value if duplicates appear.
                if c.similarity > m.get(i, j) {
                    m.set(i, j, c.similarity);
                }
            }
        }
        m
    }
}

impl Matcher for SchemaMatcher {
    fn name(&self) -> &str {
        &self.name
    }

    /// Reads the repository: never cached across executions.
    fn pure(&self) -> bool {
        false
    }

    fn compute(&self, ctx: &MatchContext<'_>) -> SimMatrix {
        let (rows, cols) = (ctx.rows(), ctx.cols());
        let Some(repo) = ctx.repository else {
            return SimMatrix::new(rows, cols);
        };
        let pairs = repo.pivot_pairs(ctx.source.name(), ctx.target.name(), |m| {
            self.kind_filter.is_none_or(|k| m.kind == k)
        });
        if pairs.is_empty() {
            return SimMatrix::new(rows, cols);
        }
        let src_index: HashMap<String, usize> =
            (0..rows).map(|i| (ctx.source_full_name(i), i)).collect();
        let tgt_index: HashMap<String, usize> =
            (0..cols).map(|j| (ctx.target_full_name(j), j)).collect();

        let mut cube = SimCube::new();
        for (k, (first, second)) in pairs.iter().enumerate() {
            let composed = match_compose(first, second, self.compose);
            let slice = Self::mapping_to_matrix(&composed, &src_index, &tgt_index, rows, cols);
            cube.push(format!("compose-{k}"), slice);
        }
        self.aggregation.aggregate(&cube)
    }
}

/// The `Fragment` reuse matcher. The paper names it ("the other, Fragment,
/// operates on schema fragments", Section 5) without details; this is our
/// reconstruction, documented in DESIGN.md:
///
/// Every stored correspondence also witnesses correspondences between the
/// **path suffixes** of its two elements (`…ShipTo.Address.City ↔
/// …DeliverTo.Address.City` witnesses `Address.City ↔ Address.City` and
/// `City ↔ City`). The matcher harvests all suffix pairs up to
/// [`FragmentMatcher::max_suffix`] from qualifying stored mappings —
/// including mappings of *other* schema pairs — and applies the dictionary
/// to the task's paths, preferring the longest matching suffix.
pub struct FragmentMatcher {
    /// Restricts which stored mappings qualify (`None` = all).
    pub kind_filter: Option<MappingKind>,
    /// Maximum suffix length harvested (in path steps).
    pub max_suffix: usize,
}

impl FragmentMatcher {
    /// Fragment matcher over all stored mappings, suffixes up to 3 steps.
    pub fn new() -> FragmentMatcher {
        FragmentMatcher {
            kind_filter: None,
            max_suffix: 3,
        }
    }
}

impl Default for FragmentMatcher {
    fn default() -> Self {
        FragmentMatcher::new()
    }
}

fn suffix(path: &str, k: usize) -> Option<String> {
    let parts: Vec<&str> = path.split('.').collect();
    if parts.len() < k || k == 0 {
        return None;
    }
    Some(parts[parts.len() - k..].join("."))
}

impl Matcher for FragmentMatcher {
    fn name(&self) -> &str {
        "Fragment"
    }

    /// Reads the repository: never cached across executions.
    fn pure(&self) -> bool {
        false
    }

    fn compute(&self, ctx: &MatchContext<'_>) -> SimMatrix {
        let (rows, cols) = (ctx.rows(), ctx.cols());
        let mut out = SimMatrix::new(rows, cols);
        let Some(repo) = ctx.repository else {
            return out;
        };
        let (src_name, tgt_name) = (ctx.source.name(), ctx.target.name());

        // Harvest the suffix dictionary, keeping the best similarity per
        // suffix pair. Mappings involving the task pair itself are skipped —
        // those are direct results, not reuse.
        let mut dict: Vec<HashMap<(String, String), f64>> =
            vec![HashMap::new(); self.max_suffix + 1];
        for m in repo.mappings() {
            if m.relates(src_name, tgt_name) {
                continue;
            }
            if let Some(k) = self.kind_filter {
                if m.kind != k {
                    continue;
                }
            }
            for c in &m.correspondences {
                for (k, level) in dict.iter_mut().enumerate().skip(1) {
                    if let (Some(a), Some(b)) = (suffix(&c.source, k), suffix(&c.target, k)) {
                        let e = level.entry((a.clone(), b.clone())).or_insert(0.0);
                        *e = e.max(c.similarity);
                        // Suffix pairs witness both orientations.
                        let e2 = level.entry((b, a)).or_insert(0.0);
                        *e2 = e2.max(c.similarity);
                    }
                }
            }
        }
        if dict.iter().all(HashMap::is_empty) {
            return out;
        }

        let src_names: Vec<String> = (0..rows).map(|i| ctx.source_full_name(i)).collect();
        let tgt_names: Vec<String> = (0..cols).map(|j| ctx.target_full_name(j)).collect();
        for (i, a) in src_names.iter().enumerate() {
            for (j, b) in tgt_names.iter().enumerate() {
                // Longest matching suffix wins.
                for k in (1..=self.max_suffix).rev() {
                    let (Some(sa), Some(sb)) = (suffix(a, k), suffix(b, k)) else {
                        continue;
                    };
                    if let Some(&sim) = dict[k].get(&(sa, sb)) {
                        out.set(i, j, sim);
                        break;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matchers::context::Auxiliary;
    use coma_graph::{DataType, Node, PathSet, Schema, SchemaBuilder};
    use coma_repo::Repository;

    fn contact_schema(name: &str, leaves: &[&str]) -> Schema {
        let mut b = SchemaBuilder::new(name);
        let root = b.add_node(Node::new(name));
        let contact = b.add_node(Node::new("Contact"));
        b.add_child(root, contact).unwrap();
        for leaf in leaves {
            let n = b.add_node(Node::new(*leaf).with_datatype(DataType::Text));
            b.add_child(contact, n).unwrap();
        }
        b.build().unwrap()
    }

    /// Figure 3: PO1 {Name, Email, company}, PO2 {name, e-mail, company},
    /// PO3 {firstName, lastName, email, company}.
    fn figure3_repo() -> Repository {
        let mut repo = Repository::new();
        let mut m1 = Mapping::new("PO1", "PO2", MappingKind::Manual);
        m1.push("PO1.Contact.Email", "PO2.Contact.e-mail", 1.0);
        m1.push("PO1.Contact.Name", "PO2.Contact.name", 1.0);
        repo.put_mapping(m1);
        let mut m2 = Mapping::new("PO2", "PO3", MappingKind::Manual);
        m2.push("PO2.Contact.e-mail", "PO3.Contact.email", 1.0);
        m2.push("PO2.Contact.name", "PO3.Contact.firstName", 0.8);
        m2.push("PO2.Contact.name", "PO3.Contact.lastName", 0.8);
        repo.put_mapping(m2);
        repo
    }

    #[test]
    fn schema_matcher_reproduces_figure_3() {
        let s1 = contact_schema("PO1", &["Name", "Email", "company"]);
        let s3 = contact_schema("PO3", &["firstName", "lastName", "email", "company"]);
        let p1 = PathSet::new(&s1).unwrap();
        let p3 = PathSet::new(&s3).unwrap();
        let aux = Auxiliary::standard();
        let repo = figure3_repo();
        let ctx = MatchContext::new(&s1, &s3, &p1, &p3, &aux).with_repository(&repo);
        let m = SchemaMatcher::manual().compute(&ctx);

        let cell = |a: &str, b: &str| {
            let i = p1.find_by_full_name(&s1, a).unwrap().index();
            let j = p3.find_by_full_name(&s3, b).unwrap().index();
            m.get(i, j)
        };
        // Email ↔ email composes to (1+1)/2 = 1.0.
        assert_eq!(cell("PO1.Contact.Email", "PO3.Contact.email"), 1.0);
        // Name ↔ firstName: (1+0.8)/2 = 0.9.
        assert!((cell("PO1.Contact.Name", "PO3.Contact.firstName") - 0.9).abs() < 1e-12);
        // company has no counterpart in PO2 → missed (Figure 3's caveat).
        assert_eq!(cell("PO1.Contact.company", "PO3.Contact.company"), 0.0);
    }

    #[test]
    fn schema_matcher_respects_kind_filter() {
        let s1 = contact_schema("PO1", &["Name"]);
        let s3 = contact_schema("PO3", &["firstName"]);
        let p1 = PathSet::new(&s1).unwrap();
        let p3 = PathSet::new(&s3).unwrap();
        let aux = Auxiliary::standard();
        let repo = figure3_repo(); // all mappings are Manual
        let ctx = MatchContext::new(&s1, &s3, &p1, &p3, &aux).with_repository(&repo);
        let m = SchemaMatcher::automatic().compute(&ctx);
        assert!(m.values().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn schema_matcher_without_repository_is_zero() {
        let s1 = contact_schema("PO1", &["Name"]);
        let s3 = contact_schema("PO3", &["firstName"]);
        let p1 = PathSet::new(&s1).unwrap();
        let p3 = PathSet::new(&s3).unwrap();
        let aux = Auxiliary::standard();
        let ctx = MatchContext::new(&s1, &s3, &p1, &p3, &aux);
        let m = SchemaMatcher::manual().compute(&ctx);
        assert!(m.values().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn averaging_multiple_pivots_dampens_spurious_matches() {
        // Two pivots; only one witnesses a (spurious) correspondence, both
        // witness the true one → true 1.0, spurious 0.5·value.
        let s1 = contact_schema("A", &["email", "fax"]);
        let s2 = contact_schema("B", &["email", "phone"]);
        let mut repo = Repository::new();
        for pivot in ["P", "Q"] {
            let mut m1 = Mapping::new("A", pivot, MappingKind::Manual);
            m1.push("A.Contact.email", format!("{pivot}.Contact.email"), 1.0);
            if pivot == "P" {
                m1.push("A.Contact.fax", format!("{pivot}.Contact.phone"), 1.0);
            }
            repo.put_mapping(m1);
            let mut m2 = Mapping::new(pivot, "B", MappingKind::Manual);
            m2.push(format!("{pivot}.Contact.email"), "B.Contact.email", 1.0);
            if pivot == "P" {
                m2.push(format!("{pivot}.Contact.phone"), "B.Contact.phone", 1.0);
            }
            repo.put_mapping(m2);
        }
        let p1 = PathSet::new(&s1).unwrap();
        let p2 = PathSet::new(&s2).unwrap();
        let aux = Auxiliary::standard();
        let ctx = MatchContext::new(&s1, &s2, &p1, &p2, &aux).with_repository(&repo);
        let m = SchemaMatcher::manual().compute(&ctx);
        let cell = |a: &str, b: &str| {
            let i = p1.find_by_full_name(&s1, a).unwrap().index();
            let j = p2.find_by_full_name(&s2, b).unwrap().index();
            m.get(i, j)
        };
        assert_eq!(cell("A.Contact.email", "B.Contact.email"), 1.0);
        assert_eq!(cell("A.Contact.fax", "B.Contact.phone"), 0.5);
    }

    #[test]
    fn compose_combine_variants() {
        assert_eq!(ComposeCombine::Average.apply(0.5, 0.7), 0.6);
        assert!((ComposeCombine::Multiply.apply(0.5, 0.7) - 0.35).abs() < 1e-12);
        assert_eq!(ComposeCombine::Min.apply(0.5, 0.7), 0.5);
        assert_eq!(ComposeCombine::Max.apply(0.5, 0.7), 0.7);
    }

    #[test]
    fn fragment_matcher_transfers_suffix_correspondences() {
        // A↔B never matched; but C↔D contains Address.City ↔ Address.City
        // tails that transfer.
        let mut sb = SchemaBuilder::new("A");
        let root = sb.add_node(Node::new("A"));
        let ship = sb.add_node(Node::new("ShipTo"));
        let city = sb.add_node(Node::new("City").with_datatype(DataType::Text));
        sb.add_child(root, ship).unwrap();
        sb.add_child(ship, city).unwrap();
        let s1 = sb.build().unwrap();

        let mut sb = SchemaBuilder::new("B");
        let root = sb.add_node(Node::new("B"));
        let deliver = sb.add_node(Node::new("DeliverTo"));
        let city = sb.add_node(Node::new("City").with_datatype(DataType::Text));
        sb.add_child(root, deliver).unwrap();
        sb.add_child(deliver, city).unwrap();
        let s2 = sb.build().unwrap();

        let mut repo = Repository::new();
        let mut m = Mapping::new("C", "D", MappingKind::Manual);
        m.push("C.Order.ShipTo.City", "D.Header.DeliverTo.City", 0.9);
        repo.put_mapping(m);

        let p1 = PathSet::new(&s1).unwrap();
        let p2 = PathSet::new(&s2).unwrap();
        let aux = Auxiliary::standard();
        let ctx = MatchContext::new(&s1, &s2, &p1, &p2, &aux).with_repository(&repo);
        let out = FragmentMatcher::new().compute(&ctx);
        let i = p1.find_by_full_name(&s1, "A.ShipTo.City").unwrap().index();
        let j = p2
            .find_by_full_name(&s2, "B.DeliverTo.City")
            .unwrap()
            .index();
        // Suffix "ShipTo.City" ↔ "DeliverTo.City" (k=2) transfers 0.9.
        assert_eq!(out.get(i, j), 0.9);
    }

    #[test]
    fn fragment_matcher_ignores_direct_mappings() {
        let s1 = contact_schema("A", &["email"]);
        let s2 = contact_schema("B", &["email"]);
        let mut repo = Repository::new();
        let mut m = Mapping::new("A", "B", MappingKind::Manual);
        m.push("A.Contact.email", "B.Contact.email", 1.0);
        repo.put_mapping(m);
        let p1 = PathSet::new(&s1).unwrap();
        let p2 = PathSet::new(&s2).unwrap();
        let aux = Auxiliary::standard();
        let ctx = MatchContext::new(&s1, &s2, &p1, &p2, &aux).with_repository(&repo);
        let out = FragmentMatcher::new().compute(&ctx);
        assert!(out.values().iter().all(|&v| v == 0.0));
    }
}
