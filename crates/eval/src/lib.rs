//! # coma-eval — the COMA evaluation framework
//!
//! Reproduces the paper's comprehensive evaluation (Section 7): quality
//! metrics, the five-schema purchase-order corpus with gold standards, and
//! the exhaustive experiment harness sweeping 12,312 series of matchers ×
//! combination strategies (Table 6) to regenerate Figures 8–13.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod corpus;
pub mod experiment;
pub mod metrics;
pub mod reuse;

pub use corpus::{task_label, Corpus, SCHEMA_NAMES, TASKS};
pub use metrics::{AverageQuality, MatchQuality};
pub use reuse::{fresh_task_mappings, reuse_repository};
