//! # coma-server — matching as a service
//!
//! COMA's defining idea beyond matcher combination is the *repository*:
//! schemas and match results stored for reuse across runs (paper,
//! Section 1). This crate puts a long-running service in front of the
//! engine so that reuse actually spans processes and clients:
//!
//! * **Transport** — a unix socket carrying length-prefixed JSON frames
//!   ([`protocol`]): offline-friendly, no network stack, framed so
//!   message boundaries are explicit.
//! * **Persistence** — the repository lives behind a
//!   [`coma_repo::RepositoryBackend`] (single JSON file, atomic
//!   temp-file + rename writes), loaded at startup: schemas stored by
//!   one server process are served by the next.
//! * **Concurrency** — one scoped thread per connection over one shared
//!   [`ServerState`]; stored schemas are handed out as shared
//!   `Arc<Schema>` allocations, and the engine row-shards big stages
//!   across its own threads.
//! * **Cross-request memo** — every tenant owns a
//!   [`coma_core::EngineCache`]: tokenizations, name-pair similarity
//!   tables, pure matcher matrices and vocabulary indexes are keyed by
//!   schema *content fingerprint*, so repeat traffic against a hot
//!   schema pair skips recomputation entirely (the per-execution
//!   `MatchMemo` is a view over this cache).
//!
//! The binary (`coma-server --socket PATH [--store FILE]`) serves until
//! a `Shutdown` request; `coma-cli --server PATH …` is the matching
//! client.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod protocol;
mod server;
mod state;

pub use client::Client;
pub use protocol::{
    InlineSchema, MatchConfig, MatchRequest, MatchResponse, PlanSpec, RankedCorrespondence,
    Request, Response, ReuseSpec, SchemaFormat, SchemaInfo, SchemaRef, ServerStats,
};
pub use server::Server;
pub use state::{ServerState, TenantState};
