//! The terminological dictionary of the `Synonym` matcher.

use coma_strings::normalize_token;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A terminological dictionary for the `Synonym` matcher.
///
/// "This matcher estimates the similarity between element names by looking
/// up the terminological relationships in a specified dictionary.
/// Currently, it simply uses relationship-specific similarity values, e.g.,
/// 1.0 for a synonymy and 0.8 for a hypernymy relationship" (Section 4.1).
///
/// Lookups are symmetric and keyed on normalized tokens (lower-case,
/// alphanumeric only).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SynonymTable {
    entries: HashMap<(String, String), f64>,
}

/// Similarity assigned to synonym pairs.
pub const SYNONYM_SIM: f64 = 1.0;
/// Similarity assigned to hypernym pairs.
pub const HYPERNYM_SIM: f64 = 0.8;

impl SynonymTable {
    /// An empty dictionary.
    pub fn new() -> SynonymTable {
        SynonymTable::default()
    }

    /// The dictionary used by the paper's evaluation (Section 7.1):
    /// "a synonym file with […] domain-specific synonyms, such as
    /// (ship, deliver), (bill, invoice)", extended with the obvious
    /// purchase-order vocabulary of the corpus.
    pub fn purchase_order() -> SynonymTable {
        let mut t = SynonymTable::new();
        for (a, b) in [
            ("ship", "deliver"),
            ("bill", "invoice"),
            ("customer", "buyer"),
            ("vendor", "supplier"),
            ("vendor", "seller"),
            ("supplier", "seller"),
            ("street", "road"),
            ("zip", "postcode"),
            ("zip", "postalcode"),
            ("postcode", "postalcode"),
            ("phone", "telephone"),
            ("item", "line"),
            ("article", "product"),
            ("price", "cost"),
            ("total", "sum"),
            ("company", "organization"),
        ] {
            t.add_synonym(a, b);
        }
        for (sub, sup) in [
            ("city", "location"),
            ("state", "region"),
            ("province", "region"),
            ("county", "region"),
            ("fax", "telephone"),
        ] {
            t.add_hypernym(sub, sup);
        }
        t
    }

    /// Registers a synonym pair (similarity 1.0).
    pub fn add_synonym(&mut self, a: &str, b: &str) {
        self.add_with_similarity(a, b, SYNONYM_SIM);
    }

    /// Registers a hypernym pair (similarity 0.8).
    pub fn add_hypernym(&mut self, sub: &str, sup: &str) {
        self.add_with_similarity(sub, sup, HYPERNYM_SIM);
    }

    /// Registers a pair with an explicit relationship similarity.
    pub fn add_with_similarity(&mut self, a: &str, b: &str, sim: f64) {
        let key = Self::key(a, b);
        self.entries.insert(key, sim.clamp(0.0, 1.0));
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The dictionary similarity of two tokens: 1.0 for equal normalized
    /// tokens, the relationship similarity for known pairs, else 0.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        let (na, nb) = (normalize_token(a), normalize_token(b));
        if na == nb && !na.is_empty() {
            return 1.0;
        }
        self.entries
            .get(&Self::ordered(na, nb))
            .copied()
            .unwrap_or(0.0)
    }

    /// Iterates every registered relationship as `(a, b, similarity)`
    /// over the normalized key pair (order within a pair is the key's
    /// lexicographic order; pair iteration order is unspecified — callers
    /// that need determinism must sort). Used by the candidate index to
    /// expand token postings across the dictionary.
    pub fn relations(&self) -> impl Iterator<Item = (&str, &str, f64)> + '_ {
        self.entries
            .iter()
            .map(|((a, b), &sim)| (a.as_str(), b.as_str(), sim))
    }

    fn key(a: &str, b: &str) -> (String, String) {
        Self::ordered(normalize_token(a), normalize_token(b))
    }

    fn ordered(a: String, b: String) -> (String, String) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ship_deliver_is_a_synonym() {
        // Section 6.4: "a semantic matcher such as Synonym can detect the
        // synonymy [of Ship and Deliver] and assign a high similarity".
        let t = SynonymTable::purchase_order();
        assert_eq!(t.similarity("Ship", "Deliver"), 1.0);
        assert_eq!(t.similarity("deliver", "ship"), 1.0);
    }

    #[test]
    fn hypernyms_score_08() {
        let t = SynonymTable::purchase_order();
        assert_eq!(t.similarity("city", "location"), HYPERNYM_SIM);
    }

    #[test]
    fn equal_tokens_score_1_without_entries() {
        let t = SynonymTable::new();
        assert_eq!(t.similarity("City", "city"), 1.0);
        assert_eq!(t.similarity("city", "town"), 0.0);
    }

    #[test]
    fn lookup_is_symmetric_and_normalized() {
        let mut t = SynonymTable::new();
        t.add_synonym("Bill-To", "invoice");
        assert_eq!(t.similarity("billto", "Invoice"), 1.0);
        assert_eq!(t.similarity("Invoice", "billto"), 1.0);
    }

    #[test]
    fn explicit_similarity_is_clamped() {
        let mut t = SynonymTable::new();
        t.add_with_similarity("a", "b", 3.0);
        assert_eq!(t.similarity("a", "b"), 1.0);
    }

    #[test]
    fn empty_tokens_never_match() {
        let t = SynonymTable::new();
        assert_eq!(t.similarity("", ""), 0.0);
        assert_eq!(t.similarity("--", "--"), 0.0);
    }
}
