//! Regenerates Figure 10 of the paper: the share of series belonging to
//! each aggregation (a), direction (b) and best-selection (c) strategy per
//! average-Overall range, over the 8,208 no-reuse series.

use coma_core::Selection;
use coma_eval::experiment::report::{bin_labels, grouped_histogram, render_table, BIN_COUNT};
use coma_eval::experiment::{no_reuse_series, Harness, SeriesResult};
use std::collections::BTreeMap;

fn print_share_table(title: &str, groups: &BTreeMap<String, [usize; BIN_COUNT]>) {
    println!("{title}\n");
    let labels = bin_labels();
    let mut rows = Vec::new();
    for (name, bins) in groups {
        let mut row = vec![name.clone()];
        for b in 0..BIN_COUNT {
            let total: usize = groups.values().map(|g| g[b]).sum();
            if total == 0 {
                row.push("-".to_string());
            } else {
                row.push(format!("{:.0}%", 100.0 * bins[b] as f64 / total as f64));
            }
        }
        rows.push(row);
    }
    let mut headers: Vec<&str> = vec!["Strategy"];
    let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
    headers.extend(label_refs);
    println!("{}", render_table(&headers, &rows));
}

fn main() {
    eprintln!("building harness…");
    let harness = Harness::new();
    let series = no_reuse_series();
    eprintln!("running {} no-reuse series…", series.len());
    let results = harness.run(&series);

    // (a) Aggregation — combinations only (single matchers have no
    // aggregation dimension; paper: 2376 series per strategy).
    let combos: Vec<SeriesResult> = results
        .iter()
        .filter(|r| r.spec.matchers.len() > 1)
        .cloned()
        .collect();
    let agg = grouped_histogram(&combos, |r| r.spec.aggregation.to_string());
    print_share_table(
        "Figure 10a — share of series per aggregation strategy",
        &agg,
    );

    // (b) Direction — all no-reuse series (2736 per strategy).
    let dir = grouped_histogram(&results, |r| r.spec.direction.to_string());
    print_share_table("Figure 10b — share of series per direction strategy", &dir);

    // (c) Best selection variants (228 series per selection strategy).
    let interesting = [
        Selection::threshold(0.8),
        Selection::max_n(1),
        Selection::max_n(1).with_threshold(0.5),
        Selection::delta(0.02),
        Selection::delta(0.02).with_threshold(0.5),
    ];
    let best_sel: Vec<SeriesResult> = results
        .iter()
        .filter(|r| interesting.contains(&r.spec.selection))
        .cloned()
        .collect();
    let sel = grouped_histogram(&best_sel, |r| r.spec.selection.to_string());
    print_share_table(
        "Figure 10c — share of series per (best) selection strategy",
        &sel,
    );

    // Paper conclusions to compare against.
    println!("Paper (Section 7.2): Max only below 0.1; Average reaches the");
    println!("highest ranges; SmallLarge below 0.3; Both is best; Threshold");
    println!("worst, Delta(0.02)/Thr(0.5)+Delta(0.02) best.");
}
