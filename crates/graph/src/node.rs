use crate::DataType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node within one [`Schema`](crate::Schema).
///
/// Node ids are dense indices into the schema's node arena; they are only
/// meaningful together with the schema that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw index of this node in its schema's arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    pub(crate) fn from_index(index: usize) -> NodeId {
        NodeId(u32::try_from(index).expect("schema larger than u32::MAX nodes"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Classification of a node by its containment children.
///
/// The paper distinguishes **inner** elements (with children) from **leaf**
/// elements (Table 5 reports both separately; the `Children` and `Leaves`
/// matchers treat them differently).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// Node with at least one containment child.
    Inner,
    /// Node without containment children.
    Leaf,
}

/// A schema element: relational table or column, XML element, attribute or
/// named complex type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Element name as written in the source schema (e.g. `shipToCity`).
    pub name: String,
    /// Generic data type, for typed leaves; `None` for untyped/inner nodes.
    pub datatype: Option<DataType>,
    /// The original type name from the source schema (e.g. `VARCHAR(200)`,
    /// `xsd:decimal`, or the name of a complex type). Kept for diagnostics
    /// and for user-defined matchers that want the raw spelling.
    pub type_name: Option<String>,
    /// Optional documentation/annotation text imported from the source.
    pub annotation: Option<String>,
}

impl Node {
    /// Creates a new node with the given name and no type information.
    pub fn new(name: impl Into<String>) -> Node {
        Node {
            name: name.into(),
            datatype: None,
            type_name: None,
            annotation: None,
        }
    }

    /// Builder-style setter for the generic data type.
    pub fn with_datatype(mut self, datatype: DataType) -> Node {
        self.datatype = Some(datatype);
        self
    }

    /// Builder-style setter for the original type name.
    pub fn with_type_name(mut self, type_name: impl Into<String>) -> Node {
        self.type_name = Some(type_name.into());
        self
    }

    /// Builder-style setter for the annotation text.
    pub fn with_annotation(mut self, annotation: impl Into<String>) -> Node {
        self.annotation = Some(annotation.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_builders_set_fields() {
        let n = Node::new("custCity")
            .with_datatype(DataType::Text)
            .with_type_name("VARCHAR(200)")
            .with_annotation("city of the customer");
        assert_eq!(n.name, "custCity");
        assert_eq!(n.datatype, Some(DataType::Text));
        assert_eq!(n.type_name.as_deref(), Some("VARCHAR(200)"));
        assert_eq!(n.annotation.as_deref(), Some("city of the customer"));
    }

    #[test]
    fn node_id_roundtrips_index() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "n42");
    }
}
