//! Property tests for the MatchCompose algebra (paper Section 5.1):
//! composition is insertion-order deterministic, the `ComposeCombine`
//! variants obey their ordering bounds on `[0, 1]`, chains with an empty
//! pivot intersection compose to empty mappings without panicking, and
//! every composed candidate is supported by a pivot path — with exactly
//! the similarity the combine rule assigns to its best support.

use coma::core::{match_compose, ComposeCombine};
use coma::repo::{Mapping, MappingKind};
use proptest::prelude::*;

const COMBINES: [ComposeCombine; 4] = [
    ComposeCombine::Average,
    ComposeCombine::Multiply,
    ComposeCombine::Min,
    ComposeCombine::Max,
];

/// Raw correspondence triples: (source element, target element,
/// similarity). Element universes are small so joins actually happen.
type Triples = Vec<(usize, usize, f64)>;

/// An `A → B` mapping whose elements are `{prefix}{index}` path names.
fn mapping(source: &str, target: &str, triples: &Triples) -> Mapping {
    let mut m = Mapping::new(source, target, MappingKind::Automatic);
    for &(s, t, sim) in triples {
        m.push(
            format!("{source}.e{s}"),
            format!("{target}.e{t}"),
            // Quantize so equality comparisons below stay meaningful even
            // if a future combine reorders floating-point operations.
            (sim * 64.0).round() / 64.0,
        );
    }
    m
}

/// A deterministic shuffle of `triples` driven by `seed`.
fn shuffled(triples: &Triples, seed: u64) -> Triples {
    let mut out = triples.clone();
    let mut state = seed | 1;
    for i in (1..out.len()).rev() {
        // SplitMix64 step; any well-mixed generator works here.
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        out.swap(i, (z % (i as u64 + 1)) as usize);
    }
    out
}

/// Composed correspondences as a canonically sorted triple list.
fn canonical(m: &Mapping) -> Vec<(String, String, f64)> {
    let mut out: Vec<(String, String, f64)> = m
        .correspondences
        .iter()
        .map(|c| (c.source.clone(), c.target.clone(), c.similarity))
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    out
}

proptest! {
    #[test]
    fn compose_ignores_correspondence_insertion_order(
        first in proptest::collection::vec((0usize..5, 0usize..5, 0.0f64..=1.0), 0..14),
        second in proptest::collection::vec((0usize..5, 0usize..5, 0.0f64..=1.0), 0..14),
        seed in 0u64..1_000_000,
    ) {
        for combine in COMBINES {
            let base = match_compose(
                &mapping("A", "B", &first),
                &mapping("B", "C", &second),
                combine,
            );
            let permuted = match_compose(
                &mapping("A", "B", &shuffled(&first, seed)),
                &mapping("B", "C", &shuffled(&second, seed.rotate_left(17))),
                combine,
            );
            prop_assert_eq!(
                canonical(&base),
                canonical(&permuted),
                "{combine:?} composition must not depend on insertion order"
            );
        }
    }

    #[test]
    fn combine_rules_obey_their_bounds(a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
        let mul = ComposeCombine::Multiply.apply(a, b);
        let min = ComposeCombine::Min.apply(a, b);
        let avg = ComposeCombine::Average.apply(a, b);
        let max = ComposeCombine::Max.apply(a, b);
        prop_assert_eq!(min, a.min(b));
        prop_assert_eq!(max, a.max(b));
        prop_assert_eq!(avg, (a + b) / 2.0);
        // On [0, 1]: s1·s2 ≤ min ≤ average ≤ max, all within [0, 1] —
        // the degradation ordering the paper argues from (Section 5.1).
        prop_assert!((0.0..=1.0).contains(&mul));
        prop_assert!(mul <= min + 1e-15);
        prop_assert!(min <= avg && avg <= max);
        prop_assert!((0.0..=1.0).contains(&max));
        // Symmetry: every rule is commutative in its arguments.
        for combine in COMBINES {
            prop_assert_eq!(combine.apply(a, b), combine.apply(b, a));
        }
    }

    #[test]
    fn disjoint_pivot_vocabularies_compose_to_empty(
        first in proptest::collection::vec((0usize..6, 0usize..3, 0.0f64..=1.0), 0..10),
        second in proptest::collection::vec((3usize..6, 0usize..6, 0.0f64..=1.0), 0..10),
    ) {
        // `first` lands in B.e0..e2, `second` departs from B.e3..e5:
        // the natural join over the pivot's elements is provably empty.
        for combine in COMBINES {
            let composed = match_compose(
                &mapping("A", "B", &first),
                &mapping("B", "C", &second),
                combine,
            );
            prop_assert!(composed.is_empty());
            prop_assert_eq!(composed.source_schema.as_str(), "A");
            prop_assert_eq!(composed.target_schema.as_str(), "C");
            // An empty hop anywhere collapses the rest of the chain too.
            let extended = match_compose(&composed, &mapping("C", "D", &first), combine);
            prop_assert!(extended.is_empty());
        }
    }

    #[test]
    fn composed_candidates_are_exactly_the_supported_pairs(
        first in proptest::collection::vec((0usize..4, 0usize..4, 0.0f64..=1.0), 0..12),
        second in proptest::collection::vec((0usize..4, 0usize..4, 0.0f64..=1.0), 0..12),
    ) {
        let m1 = mapping("A", "B", &first);
        let m2 = mapping("B", "C", &second);
        for combine in COMBINES {
            let composed = match_compose(&m1, &m2, combine);
            // Brute-force the join: for each (s, t), the best combined
            // similarity over every pivot element connecting them.
            let mut expected: std::collections::BTreeMap<(String, String), f64> =
                std::collections::BTreeMap::new();
            for c1 in &m1.correspondences {
                for c2 in &m2.correspondences {
                    if c1.target == c2.source {
                        let sim = combine.apply(c1.similarity, c2.similarity);
                        let slot = expected
                            .entry((c1.source.clone(), c2.target.clone()))
                            .or_insert(f64::NEG_INFINITY);
                        *slot = slot.max(sim);
                    }
                }
            }
            let got: std::collections::BTreeMap<(String, String), f64> = composed
                .correspondences
                .iter()
                .map(|c| ((c.source.clone(), c.target.clone()), c.similarity))
                .collect();
            prop_assert_eq!(
                got.len(),
                composed.len(),
                "composition must not emit duplicate (source, target) pairs"
            );
            prop_assert_eq!(
                got,
                expected,
                "{combine:?} candidates must be exactly the pivot-supported pairs"
            );
        }
    }
}
