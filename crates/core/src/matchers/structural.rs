//! The hybrid structural matchers of Section 4.2: `Children` and `Leaves`.
//! Both derive the similarity of inner elements from the similarity of
//! element sets below them, computed by a configurable **leaf matcher**
//! (default `TypeName`, Table 4) and combined with steps 2+3 of the
//! combination scheme (`Both`/`Max1`, `Average`).
//!
//! Both matchers are [`sparse_capable`](Matcher::sparse_capable): under a
//! search-space restriction they compute set similarities only for the
//! allowed pairs (plus, for `Children`, the recursively needed child
//! pairs) instead of the full cross-product, with results bit-identical
//! to the masked dense computation.

use crate::combine::{CombinedSim, DirectedCandidates, Direction, Selection};
use crate::cube::{SimMatrix, SparseBuilder};
use crate::engine::{matcher_identity, PairMask};
use crate::matchers::context::MatchContext;
use crate::matchers::hybrid::TypeNameMatcher;
use crate::matchers::Matcher;
use coma_graph::{PathId, PathSet};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Shared configuration of the two structural matchers.
#[derive(Clone)]
struct StructuralConfig {
    leaf_matcher: Arc<dyn Matcher>,
    direction: Direction,
    selection: Selection,
    combined: CombinedSim,
}

impl StructuralConfig {
    fn paper_default() -> StructuralConfig {
        StructuralConfig {
            leaf_matcher: Arc::new(TypeNameMatcher::new()),
            direction: Direction::Both,
            selection: Selection::max_n(1),
            combined: CombinedSim::Average,
        }
    }

    /// The leaf matcher's full matrix, computed fresh or taken from the
    /// plan-execution memo (keyed by instance identity, so the standard
    /// library's shared `TypeName` is computed once per task — and shared
    /// by reference, not cloned, between `Children` and `Leaves`).
    /// Structural set similarities need the full pair space, so any
    /// search-space restriction is dropped here — the engine masks the
    /// *output* of non-cell-local matchers instead.
    fn leaf_sims(&self, ctx: &MatchContext<'_>) -> Arc<SimMatrix> {
        let full = ctx.without_restriction();
        match full.memo {
            Some(memo) => memo.matrix(
                self.leaf_matcher.name(),
                matcher_identity(&self.leaf_matcher),
                self.leaf_matcher.pure(),
                || self.leaf_matcher.compute(&full),
            ),
            None => Arc::new(self.leaf_matcher.compute(&full)),
        }
    }

    /// Combined similarity of two element sets given the full pairwise
    /// similarity table `sims` (indexed by path index).
    fn set_similarity(&self, set1: &[PathId], set2: &[PathId], sims: &SimMatrix) -> f64 {
        self.set_similarity_by(set1, set2, |p, q| sims.get(p.index(), q.index()))
    }

    /// Combined similarity of two element sets with an arbitrary pairwise
    /// similarity lookup — the sparse `Children` path layers its computed
    /// inner-pair overlay over the leaf table this way instead of cloning
    /// a dense matrix to write into.
    fn set_similarity_by(
        &self,
        set1: &[PathId],
        set2: &[PathId],
        lookup: impl Fn(PathId, PathId) -> f64,
    ) -> f64 {
        if set1.is_empty() && set2.is_empty() {
            return 1.0;
        }
        if set1.is_empty() || set2.is_empty() {
            return 0.0;
        }
        // The paper-default configuration (`Both`/`Max1`) is the per-cell
        // inner loop of every structural similarity: take the
        // allocation-free path that folds candidate sums directly instead
        // of materializing a sub-matrix plus per-element candidate lists.
        // Value-identical to the generic path (unit-tested below): the
        // same strict-greater/first-index-wins best candidate per row and
        // column, the same clamping, the same summation order.
        if self.direction == Direction::Both && self.selection == Selection::max_n(1) {
            return self.set_similarity_max1(set1, set2, lookup);
        }
        let mut sub = SimMatrix::new(set1.len(), set2.len());
        for (a, &p) in set1.iter().enumerate() {
            for (b, &q) in set2.iter().enumerate() {
                sub.set(a, b, lookup(p, q));
            }
        }
        let candidates = DirectedCandidates::select(&sub, self.direction, &self.selection);
        self.combined.compute(&candidates, set1.len(), set2.len())
    }

    /// The `Both`/`Max1` fast path of [`StructuralConfig::set_similarity_by`]:
    /// the shared allocation-free pipeline over a clamped lookup (the
    /// clamp mirrors the `SimMatrix::set` the materialized path performs).
    fn set_similarity_max1(
        &self,
        set1: &[PathId],
        set2: &[PathId],
        lookup: impl Fn(PathId, PathId) -> f64,
    ) -> f64 {
        crate::combine::max1_both_combined(
            set1.len(),
            set2.len(),
            |a, b| lookup(set1[a], set2[b]).clamp(0.0, 1.0),
            self.combined,
        )
    }
}

/// The `Children` matcher: "determines the similarity between two inner
/// elements based on the combined similarity between their child elements,
/// which in turn can be both inner and leaf elements. The similarity
/// between the inner elements needs to be recursively computed from the
/// similarity between their respective children" (Section 4.2).
///
/// Pairs where either element is a leaf fall back to the leaf matcher
/// (the paper leaves mixed pairs unspecified; the fallback keeps `Children`
/// consistent with its leaf matcher on leaf-level pairs).
pub struct ChildrenMatcher {
    config: StructuralConfig,
}

impl ChildrenMatcher {
    /// `Children` with the paper's defaults (leaf matcher `TypeName`).
    pub fn new() -> ChildrenMatcher {
        ChildrenMatcher {
            config: StructuralConfig::paper_default(),
        }
    }

    /// `Children` with a custom leaf matcher.
    pub fn with_leaf_matcher(leaf_matcher: Arc<dyn Matcher>) -> ChildrenMatcher {
        ChildrenMatcher {
            config: StructuralConfig {
                leaf_matcher,
                ..StructuralConfig::paper_default()
            },
        }
    }

    /// Overrides the step-3 combined-similarity strategy (Average/Dice).
    pub fn with_combined(mut self, combined: CombinedSim) -> ChildrenMatcher {
        self.config.combined = combined;
        self
    }

    /// Overrides the step-2 selection strategy.
    pub fn with_selection(mut self, selection: Selection) -> ChildrenMatcher {
        self.config.selection = selection;
        self
    }
}

impl Default for ChildrenMatcher {
    fn default() -> Self {
        ChildrenMatcher::new()
    }
}

impl ChildrenMatcher {
    /// The dense path: every inner × inner cell, bottom-up by source
    /// subtree height so children similarities exist before their parents'.
    fn fill_dense(&self, ctx: &MatchContext<'_>, out: &mut SimMatrix) {
        let src_by_height = paths_by_height(ctx, true);
        let tgt_inner: Vec<PathId> = ctx.target_paths.inner_paths();
        for &p in &src_by_height {
            if ctx.source_paths.is_leaf(p) {
                continue;
            }
            for &q in &tgt_inner {
                let c2 = ctx.target_paths.children(q);
                let sim = self
                    .config
                    .set_similarity(ctx.source_paths.children(p), c2, out);
                out.set(p.index(), q.index(), sim);
            }
            // Inner × leaf pairs keep the leaf matcher's value (fallback).
        }
    }

    /// The sparse path: only the allowed inner × inner cells plus the
    /// child pairs they transitively depend on, processed bottom-up into a
    /// sparse overlay over the leaf table — no dense `m × n` buffer is
    /// cloned or written. The output holds exactly the allowed cells
    /// (computed inner values, leaf values elsewhere), which is what the
    /// dense path's engine-masked result keeps too.
    fn compute_sparse(
        &self,
        ctx: &MatchContext<'_>,
        mask: &PairMask,
        leaf_sims: &SimMatrix,
    ) -> SimMatrix {
        let cols = ctx.cols();
        let sp = ctx.source_paths;
        let tp = ctx.target_paths;

        // Transitive dependency closure: an allowed inner pair (p, q)
        // needs every inner child pair in children(p) × children(q).
        let mut needed: HashSet<usize> = HashSet::new();
        let mut stack: Vec<(PathId, PathId)> = Vec::new();
        for i in 0..ctx.rows() {
            let p = ctx.source_elem(i);
            if sp.is_leaf(p) {
                continue;
            }
            for j in mask.allowed_in_row(i) {
                let q = ctx.target_elem(j);
                if !tp.is_leaf(q) && needed.insert(i * cols + j) {
                    stack.push((p, q));
                }
            }
        }
        let mut order: Vec<(PathId, PathId)> = Vec::new();
        while let Some((p, q)) = stack.pop() {
            order.push((p, q));
            for &c1 in sp.children(p) {
                if sp.is_leaf(c1) {
                    continue;
                }
                for &c2 in tp.children(q) {
                    let cell = c1.index() * cols + c2.index();
                    if !tp.is_leaf(c2) && needed.insert(cell) {
                        stack.push((c1, c2));
                    }
                }
            }
        }

        // Bottom-up: a pair's dependencies have strictly smaller source
        // subtree height, so ordering by it computes children first. The
        // computed inner values land in the overlay; reads fall back to
        // the (shared, read-only) leaf table.
        let height = subtree_heights(sp);
        order.sort_by_key(|&(p, _)| height[p.index()]);
        let mut overlay: HashMap<usize, f64> = HashMap::with_capacity(order.len());
        for (p, q) in order {
            let sim = self.config.set_similarity_by(
                sp.children(p),
                tp.children(q),
                |a: PathId, b: PathId| {
                    overlay
                        .get(&(a.index() * cols + b.index()))
                        .copied()
                        .unwrap_or_else(|| leaf_sims.get(a.index(), b.index()))
                },
            );
            overlay.insert(p.index() * cols + q.index(), sim.clamp(0.0, 1.0));
        }

        // Materialize the allowed cells straight into CSR storage.
        let mut b = SparseBuilder::new(ctx.rows(), cols);
        for i in 0..ctx.rows() {
            for j in mask.allowed_in_row(i) {
                let v = overlay
                    .get(&(i * cols + j))
                    .copied()
                    .unwrap_or_else(|| leaf_sims.get(i, j));
                b.push(i, j, v);
            }
        }
        b.finish()
    }
}

impl Matcher for ChildrenMatcher {
    fn name(&self) -> &str {
        "Children"
    }

    fn compute(&self, ctx: &MatchContext<'_>) -> SimMatrix {
        let leaf_sims = self.config.leaf_sims(ctx);
        match ctx.restriction {
            Some(mask) => self.compute_sparse(ctx, mask, &leaf_sims),
            None => {
                let mut out = (*leaf_sims).clone();
                self.fill_dense(ctx, &mut out);
                out
            }
        }
    }

    fn sparse_capable(&self) -> bool {
        true
    }
}

/// The `Leaves` matcher: "only considers the leaf elements to estimate the
/// similarity between two inner elements. This strategy aims at more
/// stable similarity in cases of structural conflicts" (Section 4.2) —
/// e.g. it can identify ShipTo ↔ DeliverTo even though the address leaves
/// sit one level deeper in PO2.
pub struct LeavesMatcher {
    config: StructuralConfig,
}

impl LeavesMatcher {
    /// `Leaves` with the paper's defaults (leaf matcher `TypeName`).
    pub fn new() -> LeavesMatcher {
        LeavesMatcher {
            config: StructuralConfig::paper_default(),
        }
    }

    /// `Leaves` with a custom leaf matcher.
    pub fn with_leaf_matcher(leaf_matcher: Arc<dyn Matcher>) -> LeavesMatcher {
        LeavesMatcher {
            config: StructuralConfig {
                leaf_matcher,
                ..StructuralConfig::paper_default()
            },
        }
    }

    /// Overrides the step-3 combined-similarity strategy (Average/Dice).
    pub fn with_combined(mut self, combined: CombinedSim) -> LeavesMatcher {
        self.config.combined = combined;
        self
    }

    /// Overrides the step-2 selection strategy.
    pub fn with_selection(mut self, selection: Selection) -> LeavesMatcher {
        self.config.selection = selection;
        self
    }
}

impl Default for LeavesMatcher {
    fn default() -> Self {
        LeavesMatcher::new()
    }
}

impl Matcher for LeavesMatcher {
    fn name(&self) -> &str {
        "Leaves"
    }

    fn compute(&self, ctx: &MatchContext<'_>) -> SimMatrix {
        // A leaf's leaf-set is itself, so every pair is handled uniformly:
        // sim(p, q) = combined similarity of leaves_under(p) × leaves_under(q).
        if let Some(mask) = ctx.restriction {
            let leaf_sims = self.config.leaf_sims(ctx);
            // Sparse path: each cell depends only on the (full) leaf-level
            // similarity table, so only the allowed pairs are computed —
            // built straight into CSR storage, row by row.
            let mut b = SparseBuilder::new(ctx.rows(), ctx.cols());
            let mut tgt_leaves: Vec<Option<Vec<PathId>>> = vec![None; ctx.cols()];
            for i in 0..ctx.rows() {
                let mut allowed = mask.allowed_in_row(i).peekable();
                if allowed.peek().is_none() {
                    continue;
                }
                let l1 = ctx.source_paths.leaves_under(ctx.source_elem(i));
                for j in allowed {
                    let l2 = tgt_leaves[j]
                        .get_or_insert_with(|| ctx.target_paths.leaves_under(ctx.target_elem(j)));
                    b.push(i, j, self.config.set_similarity(&l1, l2, &leaf_sims));
                }
            }
            b.finish()
        } else {
            self.compute_rows(ctx, 0..ctx.rows())
        }
    }

    /// A contiguous block of rows of the dense matrix. Every cell is a
    /// set similarity over the *shared* leaf-level table (memoized when
    /// the engine attaches a memo), so rows are independent of each other
    /// and a block is bit-identical to the same rows of
    /// [`Matcher::compute`] — this is what makes `Leaves` row-shardable
    /// while `Children` (whose inner-pair recursion reads other rows'
    /// results) is not.
    fn compute_rows(&self, ctx: &MatchContext<'_>, rows: std::ops::Range<usize>) -> SimMatrix {
        if ctx.restriction.is_some() {
            // The engine only shards unrestricted computes; stay correct
            // for any other caller by slicing the restricted result.
            return self.compute(ctx).row_range(rows);
        }
        let leaf_sims = self.config.leaf_sims(ctx);
        let mut out = SimMatrix::new(rows.len(), ctx.cols());
        let src_leaves: Vec<Vec<PathId>> = rows
            .clone()
            .map(|i| ctx.source_paths.leaves_under(ctx.source_elem(i)))
            .collect();
        let tgt_leaves: Vec<Vec<PathId>> = ctx
            .target_paths
            .iter()
            .map(|q| ctx.target_paths.leaves_under(q))
            .collect();
        for (i, l1) in src_leaves.iter().enumerate() {
            for (j, l2) in tgt_leaves.iter().enumerate() {
                out.set(i, j, self.config.set_similarity(l1, l2, &leaf_sims));
            }
        }
        out
    }

    fn sparse_capable(&self) -> bool {
        true
    }

    fn row_shardable(&self) -> bool {
        true
    }
}

/// The subtree height of every path (leaves are 0).
fn subtree_heights(ps: &PathSet) -> Vec<usize> {
    let mut height = vec![0usize; ps.len()];
    // DFS preorder guarantees children appear after parents, so a reverse
    // sweep computes heights in one pass.
    for p in ps.iter().collect::<Vec<_>>().into_iter().rev() {
        let h = ps
            .children(p)
            .iter()
            .map(|c| height[c.index()] + 1)
            .max()
            .unwrap_or(0);
        height[p.index()] = h;
    }
    height
}

/// All paths of one side ordered by increasing subtree height (leaves
/// first, root last).
fn paths_by_height(ctx: &MatchContext<'_>, source: bool) -> Vec<PathId> {
    let ps = if source {
        ctx.source_paths
    } else {
        ctx.target_paths
    };
    let height = subtree_heights(ps);
    let mut order: Vec<PathId> = ps.iter().collect();
    order.sort_by_key(|p| height[p.index()]);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matchers::context::Auxiliary;
    use crate::matchers::synonym::SynonymTable;
    use coma_graph::{PathSet, Schema};

    fn po1() -> Schema {
        coma_sql::import_ddl(
            "CREATE TABLE PO1.ShipTo (
                 shipToStreet VARCHAR(200), shipToCity VARCHAR(200), shipToZip VARCHAR(20));
             CREATE TABLE PO1.Customer (custNo INT, custName VARCHAR(200));",
            "PO1",
        )
        .unwrap()
    }

    fn po2() -> Schema {
        coma_xml::import_xsd(
            r#"<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="PO2">
    <xsd:sequence>
      <xsd:element name="DeliverTo" type="Address"/>
      <xsd:element name="BillTo" type="Address"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Address">
    <xsd:sequence>
      <xsd:element name="Street" type="xsd:string"/>
      <xsd:element name="City" type="xsd:string"/>
      <xsd:element name="Zip" type="xsd:decimal"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>"#,
            "PO2",
        )
        .unwrap()
    }

    fn aux() -> Auxiliary {
        let mut a = Auxiliary::standard();
        a.synonyms = SynonymTable::purchase_order();
        a
    }

    fn run(
        matcher: &dyn Matcher,
        s1: &Schema,
        s2: &Schema,
        aux: &Auxiliary,
    ) -> (SimMatrix, PathSet, PathSet) {
        let p1 = PathSet::new(s1).unwrap();
        let p2 = PathSet::new(s2).unwrap();
        let ctx = MatchContext::new(s1, s2, &p1, &p2, aux);
        (matcher.compute(&ctx), p1, p2)
    }

    fn cell(
        s1: &Schema,
        s2: &Schema,
        m: &SimMatrix,
        p1: &PathSet,
        p2: &PathSet,
        a: &str,
        b: &str,
    ) -> f64 {
        let i = p1.find_by_full_name(s1, a).unwrap().index();
        let j = p2.find_by_full_name(s2, b).unwrap().index();
        m.get(i, j)
    }

    /// Section 4.2's key contrast: "Children will therefore only find a
    /// correspondence between ShipTo and Address, while Leaves can also
    /// identify a correspondence between ShipTo and DeliverTo."
    #[test]
    fn leaves_bridges_the_structural_conflict_children_cannot() {
        let (s1, s2, aux) = (po1(), po2(), aux());

        let (ch, p1, p2) = run(&ChildrenMatcher::new(), &s1, &s2, &aux);
        let ch_address = cell(
            &s1,
            &s2,
            &ch,
            &p1,
            &p2,
            "PO1.ShipTo",
            "PO2.DeliverTo.Address",
        );
        let ch_deliver = cell(&s1, &s2, &ch, &p1, &p2, "PO1.ShipTo", "PO2.DeliverTo");
        assert!(
            ch_address > ch_deliver,
            "Children: Address {ch_address} vs DeliverTo {ch_deliver}"
        );

        let (lv, p1, p2) = run(&LeavesMatcher::new(), &s1, &s2, &aux);
        let lv_deliver = cell(&s1, &s2, &lv, &p1, &p2, "PO1.ShipTo", "PO2.DeliverTo");
        let lv_address = cell(
            &s1,
            &s2,
            &lv,
            &p1,
            &p2,
            "PO1.ShipTo",
            "PO2.DeliverTo.Address",
        );
        // Leaves sees identical leaf sets for DeliverTo and its Address.
        assert!(
            (lv_deliver - lv_address).abs() < 1e-12,
            "Leaves: DeliverTo {lv_deliver} vs Address {lv_address}"
        );
        assert!(lv_deliver > 0.5, "Leaves ShipTo↔DeliverTo: {lv_deliver}");
        assert!(lv_deliver > ch_deliver);
    }

    #[test]
    fn leaf_pairs_fall_back_to_the_leaf_matcher() {
        let (s1, s2, aux) = (po1(), po2(), aux());
        let tn = TypeNameMatcher::new();
        let (tn_m, p1, p2) = run(&tn, &s1, &s2, &aux);
        let (ch, _, _) = run(&ChildrenMatcher::new(), &s1, &s2, &aux);
        let (lv, _, _) = run(&LeavesMatcher::new(), &s1, &s2, &aux);
        let pairs = [
            ("PO1.ShipTo.shipToCity", "PO2.DeliverTo.Address.City"),
            ("PO1.Customer.custName", "PO2.BillTo.Address.Zip"),
        ];
        for (a, b) in pairs {
            let want = cell(&s1, &s2, &tn_m, &p1, &p2, a, b);
            assert!((cell(&s1, &s2, &ch, &p1, &p2, a, b) - want).abs() < 1e-12);
            assert!((cell(&s1, &s2, &lv, &p1, &p2, a, b) - want).abs() < 1e-12);
        }
    }

    #[test]
    fn children_scores_matching_child_sets_high() {
        let (s1, s2, aux) = (po1(), po2(), aux());
        let (ch, p1, p2) = run(&ChildrenMatcher::new(), &s1, &s2, &aux);
        // ShipTo's children (street, city, zip) match Address's children.
        let sim = cell(
            &s1,
            &s2,
            &ch,
            &p1,
            &p2,
            "PO1.ShipTo",
            "PO2.DeliverTo.Address",
        );
        assert!(sim > 0.5, "{sim}");
        // Customer's children (custNo, custName) match Address poorly.
        let bad = cell(
            &s1,
            &s2,
            &ch,
            &p1,
            &p2,
            "PO1.Customer",
            "PO2.DeliverTo.Address",
        );
        assert!(bad < sim, "{bad} vs {sim}");
    }

    /// The allocation-free `Both`/`Max1` fast path of `set_similarity`
    /// computes exactly what the generic sub-matrix + select + combine
    /// pipeline computes, for Average and Dice alike.
    #[test]
    fn max1_fast_path_matches_the_generic_pipeline() {
        // Pseudo-random but deterministic similarity table over path ids,
        // with plenty of zeros and exact ties to stress the tie-breaking.
        let table = |p: PathId, q: PathId| -> f64 {
            let h = (p.index() * 31 + q.index() * 17) % 13;
            match h {
                0..=4 => 0.0,
                5..=8 => 0.5,
                _ => h as f64 / 13.0,
            }
        };
        let ids: Vec<PathId> = {
            // Borrow real path ids from a small schema.
            let s = po1();
            let ps = PathSet::new(&s).unwrap();
            ps.iter().collect()
        };
        for m in 1..5usize {
            for n in 1..5usize {
                let set1 = &ids[..m];
                let set2 = &ids[ids.len() - n..];
                for combined in [CombinedSim::Average, CombinedSim::Dice] {
                    let config = StructuralConfig {
                        combined,
                        ..StructuralConfig::paper_default()
                    };
                    let fast = config.set_similarity_max1(set1, set2, table);
                    // The generic pipeline, spelled out by hand.
                    let mut sub = SimMatrix::new(m, n);
                    for (a, &p) in set1.iter().enumerate() {
                        for (b, &q) in set2.iter().enumerate() {
                            sub.set(a, b, table(p, q));
                        }
                    }
                    let cands =
                        DirectedCandidates::select(&sub, config.direction, &config.selection);
                    let generic = config.combined.compute(&cands, m, n);
                    assert_eq!(fast, generic, "m={m} n={n} {combined:?}");
                    // And set_similarity_by routes Max1/Both onto the fast
                    // path without changing the value.
                    assert_eq!(config.set_similarity_by(set1, set2, table), generic);
                }
            }
        }
    }

    #[test]
    fn roots_get_a_defined_similarity() {
        let (s1, s2, aux) = (po1(), po2(), aux());
        for matcher in [
            &ChildrenMatcher::new() as &dyn Matcher,
            &LeavesMatcher::new(),
        ] {
            let (m, _, _) = run(matcher, &s1, &s2, &aux);
            let root_sim = m.get(0, 0);
            assert!((0.0..=1.0).contains(&root_sim));
        }
    }
}
