//! # coma-graph — schema graph substrate for COMA
//!
//! COMA (Do & Rahm, VLDB 2002) represents every schema — relational,
//! XML, or otherwise — as a **rooted directed acyclic graph**: schema
//! elements are nodes, and directed links of different types (containment,
//! referential) connect them (paper, Section 3, Figure 1).
//!
//! Match algorithms do not operate on nodes directly but on **paths**:
//! sequences of nodes following containment links from the root. A shared
//! fragment (e.g. an `Address` type used by both `DeliverTo` and `BillTo`)
//! is a single node reachable via multiple paths, and every path gets its
//! own match candidates.
//!
//! This crate provides:
//!
//! * [`Schema`] — the graph itself, built through [`SchemaBuilder`] with
//!   cycle detection,
//! * [`DataType`] — the generic data-type system shared by all importers,
//! * [`PathSet`] — the path unfolding of a schema with parent/child/leaf
//!   navigation used by structural matchers,
//! * [`SchemaStats`] — the per-schema statistics reported in Table 5 of the
//!   paper (max depth, node and path counts split by inner/leaf),
//! * [`dot`] — Graphviz export for debugging and documentation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod builder;
mod datatype;
pub mod dot;
mod error;
mod node;
mod path;
mod schema;
mod stats;

pub use builder::SchemaBuilder;
pub use datatype::DataType;
pub use error::{GraphError, Result};
pub use node::{Node, NodeId, NodeKind};
pub use path::{Path, PathId, PathSet, DEFAULT_PATH_LIMIT};
pub use schema::{LinkKind, Reference, Schema};
pub use stats::SchemaStats;
