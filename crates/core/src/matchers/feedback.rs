//! User feedback (match/mismatch assertions) and its pinning semantics.

use crate::cube::SimMatrix;
use crate::matchers::context::MatchContext;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// User-provided match and mismatch assertions, keyed by dotted full path
/// names.
///
/// "COMA supports user interaction by a so-called UserFeedback matcher to
/// capture match and mismatch information provided by the user […]. This
/// matcher ensures that approved matches (and mismatches) are assigned the
/// maximal (and minimal) similarity and that these values remain unaffected
/// by the other matchers during the matcher execution step" (Section 3).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Feedback {
    matches: HashSet<(String, String)>,
    mismatches: HashSet<(String, String)>,
}

impl Feedback {
    /// Empty feedback.
    pub fn new() -> Feedback {
        Feedback::default()
    }

    /// Asserts that two elements match. Removes any conflicting mismatch.
    pub fn add_match(&mut self, source: impl Into<String>, target: impl Into<String>) {
        let key = (source.into(), target.into());
        self.mismatches.remove(&key);
        self.matches.insert(key);
    }

    /// Asserts that two elements do not match. Removes any conflicting
    /// match.
    pub fn add_mismatch(&mut self, source: impl Into<String>, target: impl Into<String>) {
        let key = (source.into(), target.into());
        self.matches.remove(&key);
        self.mismatches.insert(key);
    }

    /// Whether the pair was approved.
    pub fn is_match(&self, source: &str, target: &str) -> bool {
        self.matches
            .contains(&(source.to_string(), target.to_string()))
    }

    /// Whether the pair was rejected.
    pub fn is_mismatch(&self, source: &str, target: &str) -> bool {
        self.mismatches
            .contains(&(source.to_string(), target.to_string()))
    }

    /// Whether any feedback is present.
    pub fn is_empty(&self) -> bool {
        self.matches.is_empty() && self.mismatches.is_empty()
    }

    /// Number of (mis)match assertions.
    pub fn len(&self) -> usize {
        self.matches.len() + self.mismatches.len()
    }

    /// Pins the feedback into an aggregated similarity matrix: approved
    /// pairs become 1.0, rejected pairs 0.0, everything else is untouched.
    /// This is the "remain unaffected by the other matchers" guarantee.
    pub fn pin(&self, matrix: &mut SimMatrix, ctx: &MatchContext<'_>) {
        if self.is_empty() {
            return;
        }
        for i in 0..matrix.rows() {
            let src = ctx.source_full_name(i);
            for j in 0..matrix.cols() {
                let tgt = ctx.target_full_name(j);
                if self.matches.contains(&(src.clone(), tgt.clone())) {
                    matrix.set(i, j, 1.0);
                } else if self.mismatches.contains(&(src.clone(), tgt)) {
                    matrix.set(i, j, 0.0);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_and_mismatch_are_mutually_exclusive() {
        let mut f = Feedback::new();
        f.add_match("a", "b");
        assert!(f.is_match("a", "b"));
        f.add_mismatch("a", "b");
        assert!(!f.is_match("a", "b"));
        assert!(f.is_mismatch("a", "b"));
        f.add_match("a", "b");
        assert!(!f.is_mismatch("a", "b"));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn empty_feedback_reports_empty() {
        let f = Feedback::new();
        assert!(f.is_empty());
        assert!(!f.is_match("x", "y"));
    }
}
