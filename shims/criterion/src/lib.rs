//! Offline stand-in for `criterion`: the same macro/builder surface the
//! workspace benches use (`criterion_group!`, `criterion_main!`,
//! `Criterion::benchmark_group`, `Bencher::iter`, `black_box`), backed by
//! a simple adaptive wall-clock measurement instead of criterion's
//! statistical machinery. Good enough to spot order-of-magnitude
//! regressions and to keep `cargo bench --no-run` compiling the real
//! bench sources.

use std::time::{Duration, Instant};

/// An opaque identity function that prevents the optimizer from deleting
/// the benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver; one per `criterion_group!` invocation.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Applies command-line configuration. The shim accepts and ignores
    /// harness arguments such as `--bench`.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        run_benchmark(&name.into(), 20, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(&id, self.sample_size, f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Handed to each benchmark closure to drive the timing loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, running it enough times for a stable estimate.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    // Calibrate: grow the iteration count until one sample takes >=1ms
    // (or the calibration budget is spent).
    let mut iters: u64 = 1;
    let calibration_start = Instant::now();
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1)
            || calibration_start.elapsed() > Duration::from_millis(200)
            || iters >= 1 << 20
        {
            break;
        }
        iters *= 4;
    }

    let mut best = Duration::MAX;
    let samples = sample_size.min(20);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed < best {
            best = b.elapsed;
        }
    }
    let nanos_per_iter = best.as_nanos() as f64 / iters as f64;
    println!("{id:<40} {nanos_per_iter:>12.1} ns/iter ({iters} iters, {samples} samples)");
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
