//! The similarity matrix and cube — the intermediate structure every
//! pipeline stage produces and every combination step consumes.
//!
//! A [`SimMatrix`] is *logically* always a dense `m × n` table of
//! similarities in `[0, 1]`, but it is *physically* backed by one of two
//! [`StorageMode`]s:
//!
//! * **Dense** — a row-major `Vec<f64>`, the right shape for full
//!   cross-product matcher output;
//! * **Sparse** — CSR (compressed sparse row: row offsets + column
//!   indices + values), the right shape once `TopK`/`Seq`/`Iterate`
//!   pruning has reduced the live pair space to a sliver of `m × n`.
//!
//! The two representations are interchangeable and lossless: cells absent
//! from the sparse storage read as `0.0`, exactly like an explicit zero in
//! the dense storage, and `PartialEq`, [`SimMatrix::get`],
//! [`SimMatrix::nonzero`], [`SimMatrix::transposed`] and
//! [`SimMatrix::max_abs_diff`] all compare and operate by *value*, never by
//! representation — mixed dense/sparse operands are fine. The plan engine
//! picks the storage automatically per stage from the stage mask's
//! [`density`](crate::engine::PairMask::density); see `ARCHITECTURE.md`
//! for the end-to-end picture.
//!
//! Reading a sparse matrix:
//!
//! ```
//! use coma_core::SimMatrix;
//!
//! // Three stored entries in a 3 × 4 pair space (CSR storage).
//! let m = SimMatrix::from_entries(3, 4, vec![(0, 1, 0.8), (2, 0, 0.4), (2, 3, 0.6)]);
//! assert!(m.is_sparse());
//! assert_eq!(m.stored_entries(), 3);
//!
//! // Absent cells read as 0.0, exactly like dense zeros.
//! assert_eq!(m.get(0, 1), 0.8);
//! assert_eq!(m.get(1, 2), 0.0);
//! assert_eq!(m.row_entries(2).collect::<Vec<_>>(), vec![(0, 0.4), (3, 0.6)]);
//!
//! // Conversions are lossless, and equality is by value, not storage.
//! let dense = m.to_dense();
//! assert!(!dense.is_sparse());
//! assert_eq!(dense, m);
//! assert_eq!(dense.to_sparse(), m);
//! ```

use serde::{DeError, Deserialize, Serialize, Value};

/// The physical representation a [`SimMatrix`] currently uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageMode {
    /// Row-major `Vec<f64>` over all `m × n` cells.
    Dense,
    /// CSR: row offsets + column indices + values for the stored cells.
    Sparse,
}

impl std::fmt::Display for StorageMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageMode::Dense => f.write_str("dense"),
            StorageMode::Sparse => f.write_str("sparse"),
        }
    }
}

/// CSR storage: `offsets` has `m + 1` entries; row `i`'s cells live at
/// `cols[offsets[i]..offsets[i+1]]` / `vals[..]`, column indices strictly
/// ascending within a row.
#[derive(Debug, Clone, Default)]
struct Csr {
    offsets: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl Csr {
    fn empty(m: usize) -> Csr {
        Csr {
            offsets: vec![0; m + 1],
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// The `(cols, vals)` pair of row `i`.
    fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let (lo, hi) = (self.offsets[i], self.offsets[i + 1]);
        (&self.cols[lo..hi], &self.vals[lo..hi])
    }

    /// Index into `cols`/`vals` of cell `(i, j)`, if stored.
    fn position(&self, i: usize, j: usize) -> Result<usize, usize> {
        let lo = self.offsets[i];
        let hi = self.offsets[i + 1];
        self.cols[lo..hi]
            .binary_search(&j)
            .map(|p| lo + p)
            .map_err(|p| lo + p)
    }
}

/// The physical storage behind a [`SimMatrix`].
#[derive(Debug, Clone)]
enum SimStorage {
    Dense(Vec<f64>),
    Sparse(Csr),
}

/// An incremental builder for sparse (CSR) [`SimMatrix`] values.
///
/// Entries must be pushed in row-major order (ascending `(i, j)`); values
/// are clamped to `[0, 1]` like [`SimMatrix::set`] and zero values are
/// skipped (an absent sparse cell already reads as `0.0`).
#[derive(Debug)]
pub struct SparseBuilder {
    m: usize,
    n: usize,
    csr: Csr,
    filled_rows: usize,
}

impl SparseBuilder {
    /// A builder for an `m × n` sparse matrix.
    pub fn new(m: usize, n: usize) -> SparseBuilder {
        SparseBuilder {
            m,
            n,
            csr: Csr {
                offsets: Vec::with_capacity(m + 1),
                cols: Vec::new(),
                vals: Vec::new(),
            },
            filled_rows: 0,
        }
    }

    /// Closes out row offsets up to (and including) `row`.
    fn advance_to(&mut self, row: usize) {
        assert!(
            row + 1 >= self.filled_rows,
            "entries must be pushed row-major"
        );
        while self.filled_rows <= row {
            self.csr.offsets.push(self.csr.cols.len());
            self.filled_rows += 1;
        }
    }

    /// Pushes the cell `(i, j) = value` (row-major order required; `value`
    /// clamped to `[0, 1]`, zeros skipped).
    pub fn push(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.m && j < self.n, "entry ({i},{j}) out of bounds");
        self.advance_to(i);
        if let Some(&last) = self
            .csr
            .cols
            .get(self.csr.offsets[i]..)
            .and_then(<[usize]>::last)
        {
            assert!(j > last, "columns must ascend within a row");
        }
        let value = value.clamp(0.0, 1.0);
        if value != 0.0 {
            self.csr.cols.push(j);
            self.csr.vals.push(value);
        }
    }

    /// Pushes one whole row's `(column, value)` entries at once —
    /// ascending column order required, exactly like consecutive
    /// [`push`](SparseBuilder::push) calls. The engine's fused
    /// pruned-shard execution emits each shard row's surviving cells
    /// through this.
    pub fn push_row(&mut self, i: usize, entries: impl IntoIterator<Item = (usize, f64)>) {
        for (j, value) in entries {
            self.push(i, j, value);
        }
    }

    /// Finishes the current matrix and resets the builder for the next
    /// `next_rows × n` fragment, so one shard-local builder can emit
    /// every CSR fragment of a row-sharded computation in turn (they
    /// stitch back together via [`SimMatrix::from_row_shards`]).
    pub fn finish_reset(&mut self, next_rows: usize) -> SimMatrix {
        let next = SparseBuilder::new(next_rows, self.n);
        std::mem::replace(self, next).finish()
    }

    /// Finishes the matrix.
    pub fn finish(mut self) -> SimMatrix {
        while self.filled_rows <= self.m {
            self.csr.offsets.push(self.csr.cols.len());
            self.filled_rows += 1;
        }
        SimMatrix {
            m: self.m,
            n: self.n,
            storage: SimStorage::Sparse(self.csr),
        }
    }
}

/// A *logically dense* `m × n` similarity matrix between `m` source
/// elements and `n` target elements, physically stored dense or sparse
/// (see the [module docs](self)). Values live in `[0, 1]`; cells absent
/// from sparse storage read as `0.0`.
#[derive(Debug, Clone)]
pub struct SimMatrix {
    m: usize,
    n: usize,
    storage: SimStorage,
}

impl SimMatrix {
    /// A zero-filled dense `m × n` matrix.
    pub fn new(m: usize, n: usize) -> SimMatrix {
        SimMatrix {
            m,
            n,
            storage: SimStorage::Dense(vec![0.0; m * n]),
        }
    }

    /// An empty (all-zero) sparse `m × n` matrix.
    pub fn sparse(m: usize, n: usize) -> SimMatrix {
        SimMatrix {
            m,
            n,
            storage: SimStorage::Sparse(Csr::empty(m)),
        }
    }

    /// A sparse matrix from `(i, j, value)` entries (any order; duplicate
    /// cells must not occur). Values are clamped to `[0, 1]` and zeros are
    /// dropped, mirroring [`SimMatrix::set`].
    pub fn from_entries(
        m: usize,
        n: usize,
        entries: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> SimMatrix {
        let mut entries: Vec<(usize, usize, f64)> = entries.into_iter().collect();
        entries.sort_by_key(|&(i, j, _)| (i, j));
        let mut b = SparseBuilder::new(m, n);
        for (i, j, v) in entries {
            b.push(i, j, v);
        }
        b.finish()
    }

    /// Number of source elements (rows).
    pub fn rows(&self) -> usize {
        self.m
    }

    /// Number of target elements (columns).
    pub fn cols(&self) -> usize {
        self.n
    }

    /// The physical storage mode currently in use.
    pub fn storage_mode(&self) -> StorageMode {
        match &self.storage {
            SimStorage::Dense(_) => StorageMode::Dense,
            SimStorage::Sparse(_) => StorageMode::Sparse,
        }
    }

    /// Whether the matrix is currently stored sparse.
    pub fn is_sparse(&self) -> bool {
        matches!(self.storage, SimStorage::Sparse(_))
    }

    /// Number of physically stored cells: `m × n` for dense storage, the
    /// entry count for sparse storage. The ratio to `m × n` is the
    /// storage's memory footprint relative to a dense matrix.
    pub fn stored_entries(&self) -> usize {
        match &self.storage {
            SimStorage::Dense(_) => self.m * self.n,
            SimStorage::Sparse(csr) => csr.vals.len(),
        }
    }

    /// The value at (source `i`, target `j`).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        match &self.storage {
            SimStorage::Dense(values) => values[i * self.n + j],
            SimStorage::Sparse(csr) => match csr.position(i, j) {
                Ok(p) => csr.vals[p],
                Err(_) => 0.0,
            },
        }
    }

    /// Sets the value at (source `i`, target `j`), clamped to `[0, 1]`.
    /// On sparse storage this inserts, updates or — for a zero value —
    /// removes the stored entry (sparse storage never holds explicit
    /// zeros); insertion and removal are `O(stored entries)` splices,
    /// fine for the occasional feedback pin but wrong for bulk
    /// construction: use [`SparseBuilder`] or
    /// [`SimMatrix::from_entries`] there.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        let value = value.clamp(0.0, 1.0);
        match &mut self.storage {
            SimStorage::Dense(values) => values[i * self.n + j] = value,
            SimStorage::Sparse(csr) => {
                assert!(i < self.m && j < self.n, "cell ({i},{j}) out of bounds");
                match csr.position(i, j) {
                    // Writing zero removes the entry — sparse storage
                    // never holds explicit zeros, so `stored_entries`
                    // keeps meaning "nonzero cells".
                    Ok(p) if value == 0.0 => {
                        csr.cols.remove(p);
                        csr.vals.remove(p);
                        for o in &mut csr.offsets[i + 1..] {
                            *o -= 1;
                        }
                    }
                    Ok(p) => csr.vals[p] = value,
                    Err(p) => {
                        if value != 0.0 {
                            csr.cols.insert(p, j);
                            csr.vals.insert(p, value);
                            for o in &mut csr.offsets[i + 1..] {
                                *o += 1;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Row `i` as a slice (similarities of source `i` to every target).
    ///
    /// # Panics
    /// Panics on sparse storage — use [`SimMatrix::row_entries`] (storage
    /// agnostic) or [`SimMatrix::copy_row_into`] instead.
    pub fn row(&self, i: usize) -> &[f64] {
        match &self.storage {
            SimStorage::Dense(values) => &values[i * self.n..(i + 1) * self.n],
            SimStorage::Sparse(_) => panic!("SimMatrix::row requires dense storage"),
        }
    }

    /// Row `i` as a mutable slice. Unlike [`SimMatrix::set`] this is raw
    /// access: callers writing through it are responsible for keeping
    /// values in `[0, 1]`.
    ///
    /// # Panics
    /// Panics on sparse storage (raw dense construction API).
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        match &mut self.storage {
            SimStorage::Dense(values) => &mut values[i * self.n..(i + 1) * self.n],
            SimStorage::Sparse(_) => panic!("SimMatrix::row_mut requires dense storage"),
        }
    }

    /// Overwrites row `i` with `values` (one per column), clamping each to
    /// `[0, 1]` like [`SimMatrix::set`].
    ///
    /// # Panics
    /// Panics on sparse storage (raw dense construction API).
    #[inline]
    pub fn fill_row(&mut self, i: usize, values: &[f64]) {
        let row = self.row_mut(i);
        debug_assert_eq!(row.len(), values.len());
        for (dst, &v) in row.iter_mut().zip(values) {
            *dst = v.clamp(0.0, 1.0);
        }
    }

    /// Writes row `i` into `buf` (length `n`), whatever the storage: a
    /// memcpy for dense, zero-fill plus scatter for sparse.
    pub fn copy_row_into(&self, i: usize, buf: &mut [f64]) {
        debug_assert_eq!(buf.len(), self.n);
        match &self.storage {
            SimStorage::Dense(values) => buf.copy_from_slice(&values[i * self.n..(i + 1) * self.n]),
            SimStorage::Sparse(csr) => {
                buf.fill(0.0);
                let (cols, vals) = csr.row(i);
                for (&j, &v) in cols.iter().zip(vals) {
                    buf[j] = v;
                }
            }
        }
    }

    /// Raw values in row-major order.
    ///
    /// # Panics
    /// Panics on sparse storage — use [`SimMatrix::nonzero`] /
    /// [`SimMatrix::copy_row_into`] for storage-agnostic access.
    pub fn values(&self) -> &[f64] {
        match &self.storage {
            SimStorage::Dense(values) => values,
            SimStorage::Sparse(_) => panic!("SimMatrix::values requires dense storage"),
        }
    }

    /// The nonzero `(column, value)` entries of row `i`, ascending by
    /// column. Storage agnostic: for dense storage zeros are filtered out,
    /// for sparse storage the stored entries are scanned directly — the
    /// two storages of the same logical matrix yield identical sequences.
    pub fn row_entries(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (dense, sparse) = match &self.storage {
            SimStorage::Dense(values) => (Some(&values[i * self.n..(i + 1) * self.n]), None),
            SimStorage::Sparse(csr) => (None, Some(csr.row(i))),
        };
        let dense_iter = dense
            .into_iter()
            .flat_map(|row| row.iter().enumerate())
            .map(|(j, &v)| (j, v));
        let sparse_iter = sparse
            .into_iter()
            .flat_map(|(cols, vals)| cols.iter().zip(vals))
            .map(|(&j, &v)| (j, v));
        dense_iter.chain(sparse_iter).filter(|&(_, v)| v != 0.0)
    }

    /// A dense-stored copy (identity copy when already dense).
    pub fn to_dense(&self) -> SimMatrix {
        self.clone().into_dense()
    }

    /// Converts into dense storage (no-op when already dense).
    pub fn into_dense(self) -> SimMatrix {
        match self.storage {
            SimStorage::Dense(_) => self,
            SimStorage::Sparse(csr) => {
                let mut values = vec![0.0; self.m * self.n];
                for i in 0..self.m {
                    let (cols, vals) = csr.row(i);
                    for (&j, &v) in cols.iter().zip(vals) {
                        values[i * self.n + j] = v;
                    }
                }
                SimMatrix {
                    m: self.m,
                    n: self.n,
                    storage: SimStorage::Dense(values),
                }
            }
        }
    }

    /// A sparse-stored copy holding exactly the nonzero cells (identity
    /// copy when already sparse).
    pub fn to_sparse(&self) -> SimMatrix {
        match &self.storage {
            SimStorage::Sparse(_) => self.clone(),
            SimStorage::Dense(_) => {
                let mut b = SparseBuilder::new(self.m, self.n);
                for i in 0..self.m {
                    for (j, v) in self.row_entries(i) {
                        b.push(i, j, v);
                    }
                }
                b.finish()
            }
        }
    }

    /// The transposed matrix (targets become sources), keeping the storage
    /// mode. The dense output is filled row-major so writes stay
    /// sequential in memory; the sparse transpose is a counting sort over
    /// the stored entries.
    pub fn transposed(&self) -> SimMatrix {
        match &self.storage {
            SimStorage::Dense(values) => {
                let mut t = SimMatrix::new(self.n, self.m);
                for j in 0..self.n {
                    let row = t.row_mut(j);
                    for (i, dst) in row.iter_mut().enumerate() {
                        *dst = values[i * self.n + j];
                    }
                }
                t
            }
            SimStorage::Sparse(csr) => {
                // Counting sort: entry counts per column become the
                // transposed row offsets, then one scatter pass places
                // every entry (rows are visited in ascending order, so
                // columns ascend within each transposed row).
                let mut offsets = vec![0usize; self.n + 1];
                for &j in &csr.cols {
                    offsets[j + 1] += 1;
                }
                for j in 0..self.n {
                    offsets[j + 1] += offsets[j];
                }
                let mut cols = vec![0usize; csr.cols.len()];
                let mut vals = vec![0.0; csr.vals.len()];
                let mut cursor = offsets.clone();
                for i in 0..self.m {
                    let (rcols, rvals) = csr.row(i);
                    for (&j, &v) in rcols.iter().zip(rvals) {
                        let p = cursor[j];
                        cols[p] = i;
                        vals[p] = v;
                        cursor[j] += 1;
                    }
                }
                SimMatrix {
                    m: self.n,
                    n: self.m,
                    storage: SimStorage::Sparse(Csr {
                        offsets,
                        cols,
                        vals,
                    }),
                }
            }
        }
    }

    /// The max-norm distance to another matrix of identical dimensions:
    /// the largest absolute cell-wise difference. Used by the plan
    /// engine's `Iterate` operator as its convergence measure. The
    /// operands may use different storage modes.
    pub fn max_abs_diff(&self, other: &SimMatrix) -> f64 {
        assert_eq!(
            (self.m, self.n),
            (other.m, other.n),
            "matrix dimensions must agree"
        );
        if let (SimStorage::Dense(a), SimStorage::Dense(b)) = (&self.storage, &other.storage) {
            return a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max);
        }
        // Mixed or sparse operands: merge the nonzero entries of each row
        // (cells absent from both differ by 0 and cannot raise the max).
        let mut worst = 0.0_f64;
        for i in 0..self.m {
            let mut a = self.row_entries(i).peekable();
            let mut b = other.row_entries(i).peekable();
            loop {
                let diff = match (a.peek().copied(), b.peek().copied()) {
                    (Some((ja, va)), Some((jb, vb))) => match ja.cmp(&jb) {
                        std::cmp::Ordering::Equal => {
                            a.next();
                            b.next();
                            (va - vb).abs()
                        }
                        std::cmp::Ordering::Less => {
                            a.next();
                            va.abs()
                        }
                        std::cmp::Ordering::Greater => {
                            b.next();
                            vb.abs()
                        }
                    },
                    (Some((_, va)), None) => {
                        a.next();
                        va.abs()
                    }
                    (None, Some((_, vb))) => {
                        b.next();
                        vb.abs()
                    }
                    (None, None) => break,
                };
                worst = worst.max(diff);
            }
        }
        worst
    }

    /// The sub-matrix holding rows `range` (columns unchanged), keeping
    /// the storage mode. Row `i` of the output is row `range.start + i`
    /// of the input; an empty range yields a `0 × n` matrix.
    ///
    /// This is the default [`Matcher::compute_rows`](crate::Matcher)
    /// implementation's slicing step — and the inverse of
    /// [`SimMatrix::from_row_shards`].
    pub fn row_range(&self, range: std::ops::Range<usize>) -> SimMatrix {
        assert!(
            range.start <= range.end && range.end <= self.m,
            "row range {range:?} out of bounds for {} rows",
            self.m
        );
        let rows = range.len();
        match &self.storage {
            SimStorage::Dense(values) => SimMatrix {
                m: rows,
                n: self.n,
                storage: SimStorage::Dense(
                    values[range.start * self.n..range.end * self.n].to_vec(),
                ),
            },
            SimStorage::Sparse(csr) => {
                let (lo, hi) = (csr.offsets[range.start], csr.offsets[range.end]);
                let offsets = csr.offsets[range.start..=range.end]
                    .iter()
                    .map(|o| o - lo)
                    .collect();
                SimMatrix {
                    m: rows,
                    n: self.n,
                    storage: SimStorage::Sparse(Csr {
                        offsets,
                        cols: csr.cols[lo..hi].to_vec(),
                        vals: csr.vals[lo..hi].to_vec(),
                    }),
                }
            }
        }
    }

    /// Assembles row shards back into one matrix, in the given order: the
    /// output's row count is the sum of the shards' and every shard must
    /// have `cols` columns. This is how the plan engine stitches the
    /// results of row-sharded matcher execution ([`Matcher::compute_rows`]
    /// over contiguous ranges) into the single stage matrix:
    ///
    /// * **one shard** — returned as-is, no copy (the engine never takes
    ///   this path, but callers driving the partition themselves may);
    /// * **all shards sparse** — their CSR storages are concatenated
    ///   (offsets rebased, columns/values appended), no dense buffer ever
    ///   materializes;
    /// * **all shards dense** — slab-wise appends into one buffer
    ///   reserved up front (one memcpy per shard, no zero-fill pass);
    /// * **mixed** — one dense `m × n` buffer is filled row by row via
    ///   [`SimMatrix::copy_row_into`] (a memcpy per dense shard row,
    ///   zero-fill + scatter per sparse shard row).
    ///
    /// Either way the result is bit-identical to computing the matrix in
    /// one piece, because each cell is copied verbatim from exactly one
    /// shard.
    ///
    /// [`Matcher::compute_rows`]: crate::Matcher::compute_rows
    pub fn from_row_shards(cols: usize, mut shards: Vec<SimMatrix>) -> SimMatrix {
        for shard in &shards {
            assert_eq!(
                shard.cols(),
                cols,
                "all row shards must have {cols} columns"
            );
        }
        // A single shard already is the whole matrix: hand it back
        // without copying (the degenerate case of every assembly below).
        if shards.len() == 1 {
            return shards.pop().expect("one shard");
        }
        let rows: usize = shards.iter().map(|s| s.rows()).sum();
        if shards.iter().all(|s| s.is_sparse()) {
            let mut csr = Csr {
                offsets: Vec::with_capacity(rows + 1),
                cols: Vec::with_capacity(shards.iter().map(|s| s.stored_entries()).sum()),
                vals: Vec::with_capacity(shards.iter().map(|s| s.stored_entries()).sum()),
            };
            csr.offsets.push(0);
            for shard in &shards {
                let SimStorage::Sparse(part) = &shard.storage else {
                    unreachable!("checked sparse above");
                };
                let base = csr.cols.len();
                csr.offsets
                    .extend(part.offsets[1..].iter().map(|o| base + o));
                csr.cols.extend_from_slice(&part.cols);
                csr.vals.extend_from_slice(&part.vals);
            }
            return SimMatrix {
                m: rows,
                n: cols,
                storage: SimStorage::Sparse(csr),
            };
        }
        // All-dense shards append slab-wise into one buffer reserved up
        // front — no zero-fill pass, one memcpy per shard. This matters:
        // at 20k paths the buffer is ~3 GiB, and assembly traffic is the
        // sharded path's only serial overhead.
        if shards.iter().all(|s| !s.is_sparse()) {
            let mut values = Vec::with_capacity(rows * cols);
            for shard in &shards {
                let SimStorage::Dense(part) = &shard.storage else {
                    unreachable!("checked dense above");
                };
                values.extend_from_slice(part);
            }
            return SimMatrix {
                m: rows,
                n: cols,
                storage: SimStorage::Dense(values),
            };
        }
        // Mixed storages: stitch row by row into a dense buffer.
        let mut out = SimMatrix::new(rows, cols);
        let mut next = 0;
        for shard in &shards {
            for i in 0..shard.rows() {
                shard.copy_row_into(i, out.row_mut(next));
                next += 1;
            }
        }
        out
    }

    /// Zeroes every cell the predicate rejects: dense cells are
    /// overwritten with `0.0`, sparse entries are dropped. The logical
    /// result is identical either way.
    pub fn retain_cells(&mut self, mut keep: impl FnMut(usize, usize) -> bool) {
        match &mut self.storage {
            SimStorage::Dense(values) => {
                for i in 0..self.m {
                    for (j, v) in values[i * self.n..(i + 1) * self.n].iter_mut().enumerate() {
                        if !keep(i, j) {
                            *v = 0.0;
                        }
                    }
                }
            }
            SimStorage::Sparse(csr) => {
                let mut out = Csr {
                    offsets: Vec::with_capacity(self.m + 1),
                    cols: Vec::with_capacity(csr.cols.len()),
                    vals: Vec::with_capacity(csr.vals.len()),
                };
                out.offsets.push(0);
                for i in 0..self.m {
                    let (cols, vals) = csr.row(i);
                    for (&j, &v) in cols.iter().zip(vals) {
                        if keep(i, j) {
                            out.cols.push(j);
                            out.vals.push(v);
                        }
                    }
                    out.offsets.push(out.cols.len());
                }
                *csr = out;
            }
        }
    }

    /// Iterates over `(i, j, value)` of all cells with `value > 0`.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.m).flat_map(move |i| {
            self.row_entries(i)
                .filter(|&(_, v)| v > 0.0)
                .map(move |(j, v)| (i, j, v))
        })
    }
}

/// Equality is *logical* (per-cell values), independent of the physical
/// storage: a dense matrix equals its sparse conversion.
impl PartialEq for SimMatrix {
    fn eq(&self, other: &SimMatrix) -> bool {
        if (self.m, self.n) != (other.m, other.n) {
            return false;
        }
        if let (SimStorage::Dense(a), SimStorage::Dense(b)) = (&self.storage, &other.storage) {
            return a == b;
        }
        (0..self.m).all(|i| self.row_entries(i).eq(other.row_entries(i)))
    }
}

/// Serialized as the historical dense shape `{m, n, values}` when dense,
/// and as `{m, n, row_offsets, col_indices, sparse_values}` when sparse;
/// deserialization accepts either, so repositories written before the
/// sparse storage existed keep loading.
impl Serialize for SimMatrix {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            (Value::Str("m".into()), self.m.to_value()),
            (Value::Str("n".into()), self.n.to_value()),
        ];
        match &self.storage {
            SimStorage::Dense(values) => {
                entries.push((Value::Str("values".into()), values.to_value()));
            }
            SimStorage::Sparse(csr) => {
                entries.push((Value::Str("row_offsets".into()), csr.offsets.to_value()));
                entries.push((Value::Str("col_indices".into()), csr.cols.to_value()));
                entries.push((Value::Str("sparse_values".into()), csr.vals.to_value()));
            }
        }
        Value::Map(entries)
    }
}

impl Deserialize for SimMatrix {
    fn from_value(value: &Value) -> Result<SimMatrix, DeError> {
        let entries = value
            .as_map()
            .ok_or_else(|| DeError::custom("expected a SimMatrix map"))?;
        let m: usize = serde::field(entries, "m")?;
        let n: usize = serde::field(entries, "n")?;
        let has = |name: &str| entries.iter().any(|(k, _)| k.as_str() == Some(name));
        if has("values") {
            let values: Vec<f64> = serde::field(entries, "values")?;
            if values.len() != m * n {
                return Err(DeError::custom("dense SimMatrix value count mismatch"));
            }
            return Ok(SimMatrix {
                m,
                n,
                storage: SimStorage::Dense(values),
            });
        }
        let offsets: Vec<usize> = serde::field(entries, "row_offsets")?;
        let cols: Vec<usize> = serde::field(entries, "col_indices")?;
        let vals: Vec<f64> = serde::field(entries, "sparse_values")?;
        if offsets.len() != m + 1
            || cols.len() != vals.len()
            || offsets.first() != Some(&0)
            || offsets.last() != Some(&cols.len())
            || offsets.windows(2).any(|w| w[0] > w[1])
            || (0..m).any(|i| {
                let row = &cols[offsets[i]..offsets[i + 1]];
                row.iter().any(|&j| j >= n) || row.windows(2).any(|w| w[0] >= w[1])
            })
        {
            return Err(DeError::custom("inconsistent sparse SimMatrix storage"));
        }
        Ok(SimMatrix {
            m,
            n,
            storage: SimStorage::Sparse(Csr {
                offsets,
                cols,
                vals,
            }),
        })
    }
}

/// The similarity cube: one [`SimMatrix`] slice per executed matcher
/// (paper, Section 3: "The result of the matcher execution phase with k
/// matchers, m S1 elements and n S2 elements is a k × m × n cube").
///
/// Slices are held behind [`Arc`](std::sync::Arc)s: the plan engine's
/// memo and the stage cubes share one allocation for an unrestricted
/// matcher matrix instead of cloning it (a full dense clone is the single
/// biggest allocation on a large task), and `clone`/[`SimCube::select`]
/// are cheap. Equality, serialization and all read accessors see plain
/// matrix values — sharing is invisible to consumers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimCube {
    matcher_names: Vec<String>,
    slices: Vec<std::sync::Arc<SimMatrix>>,
}

impl SimCube {
    /// An empty cube (no matcher slices yet).
    pub fn new() -> SimCube {
        SimCube {
            matcher_names: Vec::new(),
            slices: Vec::new(),
        }
    }

    /// Adds a matcher's result slice. Panics if dimensions differ from the
    /// slices already present.
    pub fn push(&mut self, matcher_name: impl Into<String>, slice: SimMatrix) {
        self.push_shared(matcher_name, std::sync::Arc::new(slice));
    }

    /// Adds a matcher's result slice without copying: the cube shares the
    /// allocation with the caller (the engine pushes memoized matrices
    /// this way). Panics if dimensions differ from the slices already
    /// present.
    pub fn push_shared(
        &mut self,
        matcher_name: impl Into<String>,
        slice: std::sync::Arc<SimMatrix>,
    ) {
        if let Some(first) = self.slices.first() {
            assert_eq!(
                (first.rows(), first.cols()),
                (slice.rows(), slice.cols()),
                "all cube slices must have identical dimensions"
            );
        }
        self.matcher_names.push(matcher_name.into());
        self.slices.push(slice);
    }

    /// Number of matcher slices (`k`).
    pub fn len(&self) -> usize {
        self.slices.len()
    }

    /// Whether the cube has no slices.
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }

    /// Matcher names in slice order.
    pub fn matcher_names(&self) -> &[String] {
        &self.matcher_names
    }

    /// The slice of matcher `k`.
    pub fn slice(&self, k: usize) -> &SimMatrix {
        &self.slices[k]
    }

    /// The slice for a matcher name.
    pub fn slice_named(&self, name: &str) -> Option<&SimMatrix> {
        self.matcher_names
            .iter()
            .position(|n| n == name)
            .map(|k| self.slices[k].as_ref())
    }

    /// Source dimension (`m`); 0 for an empty cube.
    pub fn rows(&self) -> usize {
        self.slices.first().map_or(0, |s| s.rows())
    }

    /// Target dimension (`n`); 0 for an empty cube.
    pub fn cols(&self) -> usize {
        self.slices.first().map_or(0, |s| s.cols())
    }

    /// Whether every slice is stored sparse (an empty cube is not).
    pub fn all_sparse(&self) -> bool {
        !self.slices.is_empty() && self.slices.iter().all(|s| s.is_sparse())
    }

    /// Total physically stored cells across all slices (see
    /// [`SimMatrix::stored_entries`]).
    pub fn stored_entries(&self) -> usize {
        self.slices.iter().map(|s| s.stored_entries()).sum()
    }

    /// A short human-readable storage summary, e.g. `dense`, `sparse` or
    /// `mixed(2 dense + 3 sparse)` — used by `coma-cli --verbose`.
    pub fn storage_summary(&self) -> String {
        let sparse = self.slices.iter().filter(|s| s.is_sparse()).count();
        let dense = self.slices.len() - sparse;
        match (dense, sparse) {
            (_, 0) => "dense".to_string(),
            (0, _) => "sparse".to_string(),
            (d, s) => format!("mixed({d} dense + {s} sparse)"),
        }
    }

    /// A sub-cube containing only the named slices, in the given order
    /// (sharing the slice allocations). Unknown names are skipped.
    pub fn select(&self, names: &[&str]) -> SimCube {
        let mut out = SimCube::new();
        for &name in names {
            if let Some(k) = self.matcher_names.iter().position(|n| n == name) {
                out.push_shared(name, std::sync::Arc::clone(&self.slices[k]));
            }
        }
        out
    }
}

impl Default for SimCube {
    fn default() -> Self {
        SimCube::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(m: usize, n: usize, f: impl Fn(usize, usize) -> f64) -> SimMatrix {
        let mut mat = SimMatrix::new(m, n);
        for i in 0..m {
            for j in 0..n {
                mat.set(i, j, f(i, j));
            }
        }
        mat
    }

    #[test]
    fn matrix_get_set_clamp() {
        let mut m = SimMatrix::new(2, 3);
        m.set(0, 0, 0.5);
        m.set(1, 2, 7.0);
        m.set(0, 1, -1.0);
        assert_eq!(m.get(0, 0), 0.5);
        assert_eq!(m.get(1, 2), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn sparse_get_set_clamp() {
        let mut m = SimMatrix::sparse(2, 3);
        assert!(m.is_sparse());
        m.set(0, 0, 0.5);
        m.set(1, 2, 7.0);
        m.set(0, 1, -1.0);
        assert_eq!(m.get(0, 0), 0.5);
        assert_eq!(m.get(1, 2), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.stored_entries(), 2); // the clamped-to-zero write is dropped
                                           // Updating in place; zeroing an existing entry removes it (sparse
                                           // storage never holds explicit zeros).
        m.set(0, 0, 0.9);
        assert_eq!(m.get(0, 0), 0.9);
        m.set(0, 0, 0.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.stored_entries(), 1);
        assert_eq!(
            m,
            matrix(2, 3, |i, j| if (i, j) == (1, 2) { 1.0 } else { 0.0 })
        );
    }

    #[test]
    fn transpose_roundtrips() {
        let m = matrix(2, 3, |i, j| (i * 3 + j) as f64 / 10.0);
        let t = m.transposed();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), m.get(1, 2));
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn sparse_transpose_matches_dense_transpose() {
        let dense = matrix(3, 4, |i, j| {
            if (i + j) % 2 == 0 {
                0.0
            } else {
                0.1 * (i * 4 + j) as f64
            }
        });
        let sparse = dense.to_sparse();
        let t = sparse.transposed();
        assert!(t.is_sparse());
        assert_eq!(t, dense.transposed());
        assert_eq!(t.transposed(), dense);
    }

    #[test]
    fn row_mut_and_fill_row_access_rows() {
        let mut m = SimMatrix::new(2, 3);
        m.row_mut(1)[2] = 0.9;
        assert_eq!(m.get(1, 2), 0.9);
        m.fill_row(0, &[0.1, 7.0, -2.0]);
        assert_eq!(m.row(0), &[0.1, 1.0, 0.0]);
    }

    #[test]
    fn nonzero_iterates_sparse_cells() {
        let mut m = SimMatrix::new(2, 2);
        m.set(0, 1, 0.3);
        m.set(1, 0, 0.7);
        let cells: Vec<_> = m.nonzero().collect();
        assert_eq!(cells, vec![(0, 1, 0.3), (1, 0, 0.7)]);
        // The sparse conversion yields the identical sequence.
        assert_eq!(m.to_sparse().nonzero().collect::<Vec<_>>(), cells);
    }

    #[test]
    fn storage_conversions_are_lossless_and_equal() {
        let dense = matrix(3, 3, |i, j| if i == j { 0.5 + 0.1 * i as f64 } else { 0.0 });
        let sparse = dense.to_sparse();
        assert!(sparse.is_sparse());
        assert_eq!(sparse.stored_entries(), 3);
        assert_eq!(dense.stored_entries(), 9);
        // Value equality across storages, in both directions.
        assert_eq!(dense, sparse);
        assert_eq!(sparse, dense);
        assert_eq!(sparse.to_dense(), dense);
        assert_eq!(
            sparse.clone().into_dense().storage_mode(),
            StorageMode::Dense
        );
        // A differing cell breaks equality whatever the storage.
        let mut other = sparse.clone();
        other.set(0, 1, 0.2);
        assert_ne!(other, dense);
    }

    #[test]
    fn from_entries_sorts_clamps_and_drops_zeros() {
        let m = SimMatrix::from_entries(2, 3, vec![(1, 2, 0.5), (0, 1, 9.0), (1, 0, 0.0)]);
        assert!(m.is_sparse());
        assert_eq!(m.stored_entries(), 2);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(1, 2), 0.5);
        assert_eq!(m.get(1, 0), 0.0);
    }

    #[test]
    fn row_entries_agree_across_storages() {
        let dense = matrix(2, 4, |i, j| if j % 2 == i % 2 { 0.25 } else { 0.0 });
        let sparse = dense.to_sparse();
        for i in 0..2 {
            assert_eq!(
                dense.row_entries(i).collect::<Vec<_>>(),
                sparse.row_entries(i).collect::<Vec<_>>()
            );
        }
        let mut buf_d = vec![9.0; 4];
        let mut buf_s = vec![9.0; 4];
        dense.copy_row_into(0, &mut buf_d);
        sparse.copy_row_into(0, &mut buf_s);
        assert_eq!(buf_d, buf_s);
        assert_eq!(buf_d, vec![0.25, 0.0, 0.25, 0.0]);
    }

    #[test]
    fn max_abs_diff_handles_mixed_storage() {
        let a = matrix(2, 3, |i, j| 0.1 * (i * 3 + j) as f64);
        let b = matrix(
            2,
            3,
            |i, j| if (i, j) == (1, 1) { 0.9 } else { a.get(i, j) },
        );
        let expect = (0.9 - 0.4_f64).abs();
        let close = |x: f64| (x - expect).abs() < 1e-12;
        assert!(close(a.max_abs_diff(&b)));
        assert!(close(a.to_sparse().max_abs_diff(&b)));
        assert!(close(a.max_abs_diff(&b.to_sparse())));
        assert!(close(a.to_sparse().max_abs_diff(&b.to_sparse())));
        // Identical matrices have zero distance in every combination.
        assert_eq!(a.to_sparse().max_abs_diff(&a), 0.0);
    }

    #[test]
    fn retain_cells_zeroes_dense_and_drops_sparse() {
        let dense = matrix(2, 2, |_, _| 0.5);
        let mut d = dense.clone();
        d.retain_cells(|i, j| i == j);
        let mut s = dense.to_sparse();
        s.retain_cells(|i, j| i == j);
        assert_eq!(d, s);
        assert_eq!(s.stored_entries(), 2);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    fn empty_and_degenerate_shapes() {
        // 0 × 0, empty sparse, and single row / single column matrices.
        let empty = SimMatrix::sparse(0, 0);
        assert_eq!(empty.stored_entries(), 0);
        assert_eq!(empty, SimMatrix::new(0, 0));
        assert_eq!(empty.transposed(), empty);
        assert_eq!(empty.max_abs_diff(&SimMatrix::new(0, 0)), 0.0);

        let row = SimMatrix::from_entries(1, 5, vec![(0, 3, 0.7)]);
        assert_eq!(row.transposed().get(3, 0), 0.7);
        assert_eq!(row.transposed().rows(), 5);
        let col = row.transposed();
        assert!(col.is_sparse());
        assert_eq!(col.transposed(), row);
        assert_eq!(row.nonzero().count(), 1);
    }

    #[test]
    fn serialization_roundtrips_both_storages_and_legacy_format() {
        let dense = matrix(2, 2, |i, j| 0.1 + 0.2 * (i * 2 + j) as f64);
        let sparse = dense.to_sparse();
        let d2 = SimMatrix::from_value(&dense.to_value()).unwrap();
        assert_eq!(d2, dense);
        assert!(!d2.is_sparse());
        let s2 = SimMatrix::from_value(&sparse.to_value()).unwrap();
        assert_eq!(s2, sparse);
        assert!(s2.is_sparse());
        // The dense wire shape is the pre-sparse-storage format: a map of
        // m, n and row-major values.
        let json = serde_json::to_string(&dense).unwrap();
        assert!(json.contains("\"values\""), "{json}");
        let legacy: SimMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(legacy, dense);
        // Corrupt sparse storage is rejected.
        let bad = Value::Map(vec![
            (Value::Str("m".into()), 2usize.to_value()),
            (Value::Str("n".into()), 2usize.to_value()),
            (Value::Str("row_offsets".into()), vec![0usize, 1].to_value()),
            (Value::Str("col_indices".into()), vec![5usize].to_value()),
            (Value::Str("sparse_values".into()), vec![0.5].to_value()),
        ]);
        assert!(SimMatrix::from_value(&bad).is_err());
    }

    #[test]
    fn cube_push_and_lookup() {
        let mut cube = SimCube::new();
        cube.push("Name", matrix(2, 2, |_, _| 0.5));
        cube.push(
            "TypeName",
            matrix(2, 2, |i, j| if i == j { 1.0 } else { 0.0 }),
        );
        assert_eq!(cube.len(), 2);
        assert_eq!(cube.rows(), 2);
        assert_eq!(cube.slice_named("TypeName").unwrap().get(0, 0), 1.0);
        assert!(cube.slice_named("nope").is_none());
        let sub = cube.select(&["TypeName"]);
        assert_eq!(sub.len(), 1);
        assert_eq!(sub.matcher_names(), &["TypeName".to_string()]);
    }

    #[test]
    fn cube_storage_accounting() {
        let mut cube = SimCube::new();
        cube.push("A", matrix(2, 2, |_, _| 0.5));
        assert!(!cube.all_sparse());
        assert_eq!(cube.storage_summary(), "dense");
        cube.push(
            "B",
            matrix(2, 2, |i, j| ((i == j) as u8) as f64).to_sparse(),
        );
        assert_eq!(cube.storage_summary(), "mixed(1 dense + 1 sparse)");
        assert_eq!(cube.stored_entries(), 4 + 2);
        let mut all = SimCube::new();
        all.push("A", SimMatrix::sparse(2, 2));
        assert!(all.all_sparse());
        assert_eq!(all.storage_summary(), "sparse");
    }

    #[test]
    fn row_range_slices_both_storages() {
        let dense = matrix(5, 3, |i, j| {
            if (i + j) % 3 == 0 {
                0.0
            } else {
                0.05 * (i * 3 + j) as f64
            }
        });
        let sparse = dense.to_sparse();
        for (lo, hi) in [(0, 5), (1, 4), (2, 2), (0, 0), (5, 5), (3, 5)] {
            let d = dense.row_range(lo..hi);
            let s = sparse.row_range(lo..hi);
            assert_eq!(d.rows(), hi - lo);
            assert_eq!(d.cols(), 3);
            assert!(!d.is_sparse());
            assert!(s.is_sparse());
            assert_eq!(d, s, "rows {lo}..{hi}");
            for i in lo..hi {
                for j in 0..3 {
                    assert_eq!(d.get(i - lo, j), dense.get(i, j));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_range_rejects_out_of_bounds_ranges() {
        let _ = matrix(3, 2, |_, _| 0.5).row_range(2..6);
    }

    #[test]
    fn from_row_shards_reassembles_row_ranges() {
        let full = matrix(7, 4, |i, j| {
            if (i * 4 + j) % 3 == 0 {
                0.0
            } else {
                0.03 * (i * 4 + j) as f64
            }
        });
        // Uneven boundaries, including an empty shard in the middle.
        let bounds = [0usize, 3, 3, 5, 7];
        let dense_shards: Vec<SimMatrix> = bounds
            .windows(2)
            .map(|w| full.row_range(w[0]..w[1]))
            .collect();
        let sparse_shards: Vec<SimMatrix> = dense_shards.iter().map(|s| s.to_sparse()).collect();
        // All-dense shards stitch into a dense matrix.
        let d = SimMatrix::from_row_shards(4, dense_shards.clone());
        assert!(!d.is_sparse());
        assert_eq!(d, full);
        // All-sparse shards concatenate into CSR, same values.
        let s = SimMatrix::from_row_shards(4, sparse_shards.clone());
        assert!(s.is_sparse());
        assert_eq!(s, full);
        assert_eq!(s.stored_entries(), full.to_sparse().stored_entries());
        // Mixed shards fall back to dense assembly, same values.
        let mut mixed = dense_shards;
        mixed[1] = sparse_shards[1].clone();
        mixed[3] = sparse_shards[3].clone();
        let m = SimMatrix::from_row_shards(4, mixed);
        assert!(!m.is_sparse());
        assert_eq!(m, full);
        // Degenerate: a single empty shard and the empty shard list.
        assert_eq!(
            SimMatrix::from_row_shards(4, vec![SimMatrix::new(0, 4)]).rows(),
            0
        );
        assert_eq!(SimMatrix::from_row_shards(4, Vec::new()).rows(), 0);
    }

    #[test]
    #[should_panic(expected = "must have 3 columns")]
    fn from_row_shards_rejects_column_mismatch() {
        let _ = SimMatrix::from_row_shards(3, vec![SimMatrix::new(2, 2)]);
    }

    #[test]
    #[should_panic(expected = "identical dimensions")]
    fn cube_rejects_mismatched_slices() {
        let mut cube = SimCube::new();
        cube.push("a", SimMatrix::new(2, 2));
        cube.push("b", SimMatrix::new(3, 2));
    }
}
