//! Benchmarks of the combination framework on a paper-sized similarity
//! cube (5 matchers × 80 × 145 — the largest task, 4<->5): aggregation,
//! direction+selection, and combined similarity.

use coma_core::{
    Aggregation, CombinedSim, DirectedCandidates, Direction, Selection, SimCube, SimMatrix,
};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn synthetic_cube(k: usize, m: usize, n: usize) -> SimCube {
    let mut cube = SimCube::new();
    for s in 0..k {
        let mut mat = SimMatrix::new(m, n);
        for i in 0..m {
            for j in 0..n {
                // Deterministic pseudo-similarities with realistic sparsity.
                let h = (i * 31 + j * 17 + s * 7) % 100;
                if h < 25 {
                    mat.set(i, j, h as f64 / 100.0 + 0.3);
                }
            }
        }
        cube.push(format!("m{s}"), mat);
    }
    cube
}

fn bench_combination(c: &mut Criterion) {
    let cube = synthetic_cube(5, 80, 145);
    let mut group = c.benchmark_group("cube_combination");
    group.sample_size(30);

    group.bench_function("aggregate_average", |b| {
        b.iter(|| black_box(Aggregation::Average.aggregate(black_box(&cube))))
    });
    group.bench_function("aggregate_max", |b| {
        b.iter(|| black_box(Aggregation::Max.aggregate(black_box(&cube))))
    });

    let matrix = Aggregation::Average.aggregate(&cube);
    let selection = Selection::delta(0.02).with_threshold(0.5);
    group.bench_function("select_both_thr_delta", |b| {
        b.iter(|| {
            black_box(DirectedCandidates::select(
                black_box(&matrix),
                Direction::Both,
                &selection,
            ))
        })
    });
    group.bench_function("select_maxn1", |b| {
        b.iter(|| {
            black_box(DirectedCandidates::select(
                black_box(&matrix),
                Direction::Both,
                &Selection::max_n(1),
            ))
        })
    });
    group.bench_function("transpose", |b| {
        b.iter(|| black_box(black_box(&matrix).transposed()))
    });
    let candidates = DirectedCandidates::select(&matrix, Direction::Both, &selection);
    group.bench_function("combined_sim_average", |b| {
        b.iter(|| black_box(CombinedSim::Average.compute(black_box(&candidates), 80, 145)))
    });
    group.bench_function("stable_marriage", |b| {
        b.iter(|| black_box(coma_core::stable_marriage(black_box(&matrix), 0.5)))
    });
    group.finish();
}

criterion_group!(benches, bench_combination);
criterion_main!(benches);
