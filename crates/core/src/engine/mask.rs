//! Search-space restriction between plan stages.

use crate::cube::SimMatrix;
use crate::result::MatchResult;

/// A bitset over the `m × n` element-pair space of a match task, used by
/// [`Seq`](super::MatchPlan::Seq) to restrict a later stage to the pairs an
/// earlier stage selected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairMask {
    rows: usize,
    cols: usize,
    bits: Vec<u64>,
}

impl PairMask {
    /// An all-disallowed mask for an `rows × cols` task.
    pub fn new(rows: usize, cols: usize) -> PairMask {
        PairMask {
            rows,
            cols,
            bits: vec![0; (rows * cols).div_ceil(64)],
        }
    }

    /// The mask of the pairs a stage result selected.
    pub fn from_result(rows: usize, cols: usize, result: &MatchResult) -> PairMask {
        let mut mask = PairMask::new(rows, cols);
        for c in &result.candidates {
            mask.allow(c.source.index(), c.target.index());
        }
        mask
    }

    /// Number of source elements (`m`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of target elements (`n`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Allows the pair (source `i`, target `j`).
    pub fn allow(&mut self, i: usize, j: usize) {
        let cell = i * self.cols + j;
        self.bits[cell / 64] |= 1 << (cell % 64);
    }

    /// Whether the pair (source `i`, target `j`) is in the search space.
    #[inline]
    pub fn allows(&self, i: usize, j: usize) -> bool {
        let cell = i * self.cols + j;
        self.bits[cell / 64] & (1 << (cell % 64)) != 0
    }

    /// Number of allowed pairs.
    pub fn allowed_count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no pair is allowed.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// The intersection with another mask of the same dimensions.
    pub fn intersect(&self, other: &PairMask) -> PairMask {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "mask dimensions must agree"
        );
        PairMask {
            rows: self.rows,
            cols: self.cols,
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// Zeroes every disallowed cell of `matrix` in place.
    pub fn apply(&self, matrix: &mut SimMatrix) {
        debug_assert_eq!((matrix.rows(), matrix.cols()), (self.rows, self.cols));
        for i in 0..self.rows {
            let row = matrix.row_mut(i);
            for (j, v) in row.iter_mut().enumerate() {
                if !self.allows(i, j) {
                    *v = 0.0;
                }
            }
        }
    }

    /// A copy of `full` with every disallowed cell zeroed.
    pub fn masked_clone(&self, full: &SimMatrix) -> SimMatrix {
        let mut out = full.clone();
        self.apply(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_and_query() {
        let mut mask = PairMask::new(3, 70); // spans multiple words
        assert!(mask.is_empty());
        mask.allow(0, 0);
        mask.allow(2, 69);
        assert!(mask.allows(0, 0));
        assert!(mask.allows(2, 69));
        assert!(!mask.allows(1, 1));
        assert_eq!(mask.allowed_count(), 2);
    }

    #[test]
    fn apply_zeroes_disallowed_cells() {
        let mut m = SimMatrix::new(2, 2);
        m.set(0, 0, 0.8);
        m.set(0, 1, 0.6);
        m.set(1, 1, 0.4);
        let mut mask = PairMask::new(2, 2);
        mask.allow(0, 1);
        let masked = mask.masked_clone(&m);
        assert_eq!(masked.get(0, 0), 0.0);
        assert_eq!(masked.get(0, 1), 0.6);
        assert_eq!(masked.get(1, 1), 0.0);
        // The original is untouched.
        assert_eq!(m.get(0, 0), 0.8);
    }

    #[test]
    fn intersection_keeps_common_pairs() {
        let mut a = PairMask::new(2, 2);
        a.allow(0, 0);
        a.allow(1, 1);
        let mut b = PairMask::new(2, 2);
        b.allow(1, 1);
        b.allow(0, 1);
        let both = a.intersect(&b);
        assert!(both.allows(1, 1));
        assert!(!both.allows(0, 0));
        assert_eq!(both.allowed_count(), 1);
    }
}
