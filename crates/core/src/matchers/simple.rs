//! The simple matchers of Table 3: `Affix`, `n-gram`, `EditDistance`,
//! `Soundex` (string matchers on element names), `Synonym` (dictionary
//! lookup), `DataType` (compatibility table) and `UserFeedback`.

use crate::cube::SimMatrix;
use crate::matchers::context::MatchContext;
use crate::matchers::name_engine::TokenMatcher;
use crate::matchers::Matcher;
use std::collections::HashMap;

/// A simple matcher comparing the **names** of schema elements with one
/// string or dictionary technique. Results are memoized per name pair
/// within a computation (shared fragments repeat names across paths).
#[derive(Debug, Clone)]
pub struct SimpleNameMatcher {
    name: String,
    technique: TokenMatcher,
}

impl SimpleNameMatcher {
    /// The `Affix` matcher.
    pub fn affix() -> SimpleNameMatcher {
        SimpleNameMatcher {
            name: "Affix".into(),
            technique: TokenMatcher::Affix,
        }
    }

    /// The `n-gram` matcher (`Digram` for 2, `Trigram` for 3).
    pub fn ngram(n: usize) -> SimpleNameMatcher {
        SimpleNameMatcher {
            name: match n {
                2 => "Digram".into(),
                3 => "Trigram".into(),
                n => format!("{n}-gram"),
            },
            technique: TokenMatcher::NGram(n),
        }
    }

    /// The `EditDistance` matcher.
    pub fn edit_distance() -> SimpleNameMatcher {
        SimpleNameMatcher {
            name: "EditDistance".into(),
            technique: TokenMatcher::EditDistance,
        }
    }

    /// The `Soundex` matcher.
    pub fn soundex() -> SimpleNameMatcher {
        SimpleNameMatcher {
            name: "Soundex".into(),
            technique: TokenMatcher::Soundex,
        }
    }

    /// The `Synonym` matcher (element names against the dictionary).
    pub fn synonym() -> SimpleNameMatcher {
        SimpleNameMatcher {
            name: "Synonym".into(),
            technique: TokenMatcher::Synonym,
        }
    }
}

impl Matcher for SimpleNameMatcher {
    fn name(&self) -> &str {
        &self.name
    }

    fn compute(&self, ctx: &MatchContext<'_>) -> SimMatrix {
        let mut out = SimMatrix::new(ctx.rows(), ctx.cols());
        let mut cache: HashMap<(&str, &str), f64> = HashMap::new();
        for i in 0..ctx.rows() {
            let a = ctx.source_name(i);
            for j in 0..ctx.cols() {
                let b = ctx.target_name(j);
                let sim = *cache
                    .entry((a, b))
                    .or_insert_with(|| self.technique.similarity(a, b, ctx.aux));
                out.set(i, j, sim);
            }
        }
        out
    }
}

/// The `DataType` matcher: similarity of the generic data types of two
/// elements under the compatibility table (Section 4.1).
#[derive(Debug, Clone, Default)]
pub struct DataTypeMatcher;

impl Matcher for DataTypeMatcher {
    fn name(&self) -> &str {
        "DataType"
    }

    fn compute(&self, ctx: &MatchContext<'_>) -> SimMatrix {
        let mut out = SimMatrix::new(ctx.rows(), ctx.cols());
        for i in 0..ctx.rows() {
            let a = ctx
                .source
                .node(ctx.source_paths.node_of(ctx.source_elem(i)))
                .datatype;
            for j in 0..ctx.cols() {
                let b = ctx
                    .target
                    .node(ctx.target_paths.node_of(ctx.target_elem(j)))
                    .datatype;
                out.set(i, j, ctx.aux.type_compat.similarity_opt(a, b));
            }
        }
        out
    }
}

/// The `UserFeedback` matcher: 1.0 for user-approved pairs, 0.0 everywhere
/// else (rejections are also 0.0). During match processing the feedback is
/// additionally **pinned** after aggregation so the approved/rejected
/// values "remain unaffected by the other matchers" (Section 3).
#[derive(Debug, Clone, Default)]
pub struct UserFeedbackMatcher;

impl Matcher for UserFeedbackMatcher {
    fn name(&self) -> &str {
        "UserFeedback"
    }

    fn compute(&self, ctx: &MatchContext<'_>) -> SimMatrix {
        let mut out = SimMatrix::new(ctx.rows(), ctx.cols());
        ctx.aux.feedback.pin(&mut out, ctx);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matchers::context::Auxiliary;
    use coma_graph::{DataType, Node, PathSet, Schema, SchemaBuilder};

    fn two_leaf_schema(name: &str, leaves: &[(&str, DataType)]) -> Schema {
        let mut b = SchemaBuilder::new(name);
        let root = b.add_node(Node::new(name));
        for (leaf, dt) in leaves {
            let n = b.add_node(Node::new(*leaf).with_datatype(*dt));
            b.add_child(root, n).unwrap();
        }
        b.build().unwrap()
    }

    fn with_ctx<R>(
        s1: &Schema,
        s2: &Schema,
        aux: &Auxiliary,
        f: impl FnOnce(MatchContext<'_>) -> R,
    ) -> R {
        let p1 = PathSet::new(s1).unwrap();
        let p2 = PathSet::new(s2).unwrap();
        f(MatchContext::new(s1, s2, &p1, &p2, aux))
    }

    #[test]
    fn trigram_matcher_scores_equal_names_1() {
        let s1 = two_leaf_schema("A", &[("city", DataType::Text)]);
        let s2 = two_leaf_schema("B", &[("city", DataType::Text)]);
        let aux = Auxiliary::standard();
        with_ctx(&s1, &s2, &aux, |ctx| {
            let m = SimpleNameMatcher::ngram(3).compute(&ctx);
            // Path index 1 = the leaf (0 is the root).
            assert_eq!(m.get(1, 1), 1.0);
        });
    }

    #[test]
    fn datatype_matcher_uses_compat_table() {
        let s1 = two_leaf_schema("A", &[("x", DataType::Integer)]);
        let s2 = two_leaf_schema("B", &[("y", DataType::Decimal)]);
        let aux = Auxiliary::standard();
        with_ctx(&s1, &s2, &aux, |ctx| {
            let m = DataTypeMatcher.compute(&ctx);
            assert_eq!(m.get(1, 1), 0.8);
            // Root pair: both untyped.
            assert_eq!(m.get(0, 0), aux.type_compat.untyped_pair);
        });
    }

    #[test]
    fn feedback_matcher_marks_approved_pairs() {
        let s1 = two_leaf_schema("A", &[("x", DataType::Text)]);
        let s2 = two_leaf_schema("B", &[("y", DataType::Text)]);
        let mut aux = Auxiliary::standard();
        aux.feedback.add_match("A.x", "B.y");
        with_ctx(&s1, &s2, &aux, |ctx| {
            let m = UserFeedbackMatcher.compute(&ctx);
            assert_eq!(m.get(1, 1), 1.0);
            assert_eq!(m.get(0, 0), 0.0);
        });
    }

    #[test]
    fn matcher_names_are_stable() {
        assert_eq!(SimpleNameMatcher::ngram(2).name(), "Digram");
        assert_eq!(SimpleNameMatcher::ngram(3).name(), "Trigram");
        assert_eq!(SimpleNameMatcher::ngram(4).name(), "4-gram");
        assert_eq!(SimpleNameMatcher::affix().name(), "Affix");
        assert_eq!(SimpleNameMatcher::soundex().name(), "Soundex");
        assert_eq!(SimpleNameMatcher::edit_distance().name(), "EditDistance");
        assert_eq!(SimpleNameMatcher::synonym().name(), "Synonym");
    }
}
