//! A counting global allocator for peak-allocation tracking.
//!
//! `perf_smoke` registers [`CountingAllocator`] as its global allocator
//! and wraps the executions it wants profiled in [`measure_peak`].
//! Counting is **off by default**: outside a measurement window every
//! allocation pays exactly one relaxed load and a predicted branch, so
//! the wall-clock numbers measured in the same process stay honest.
//! Inside a window the counters are relaxed atomics.
//!
//! Counters are signed and measurements are *relative* (peak minus the
//! live count at window start): memory allocated outside a window and
//! freed inside it can push the running count below its starting point
//! without wrapping, and the window's peak still reflects the buffers
//! the measured code put live on top of its baseline.
//!
//! Only byte *sizes* are tracked — no headers, alignment padding or
//! allocator overhead — so the numbers compare storage layouts, not
//! malloc implementations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};

/// Whether a measurement window is open (counting on).
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Live tracked bytes (relative; may drift negative across windows).
static CURRENT: AtomicI64 = AtomicI64::new(0);
/// High-water mark of [`CURRENT`] inside the present window.
static PEAK: AtomicI64 = AtomicI64::new(0);

/// A [`System`]-backed allocator that, inside a [`measure_peak`] window,
/// tracks live bytes and their peak. Register it with
/// `#[global_allocator]` to make [`measure_peak`] return real numbers
/// (without it, measurement windows simply report 0).
pub struct CountingAllocator;

#[inline]
fn on_alloc(size: usize) {
    if ENABLED.load(Ordering::Relaxed) {
        let live = CURRENT.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
        PEAK.fetch_max(live, Ordering::Relaxed);
    }
}

#[inline]
fn on_dealloc(size: usize) {
    if ENABLED.load(Ordering::Relaxed) {
        CURRENT.fetch_sub(size as i64, Ordering::Relaxed);
    }
}

// SAFETY: every path delegates verbatim to `System` and only adds atomic
// counter updates; sizes passed to the counters mirror the layouts passed
// to the system allocator.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        new_ptr
    }
}

/// Runs `f` inside a measurement window and returns
/// `(peak additional live bytes during f, f())`: the window's high-water
/// mark relative to the live count when it opened. Windows must not nest
/// or overlap across threads (perf_smoke measures sequentially).
pub fn measure_peak<T>(f: impl FnOnce() -> T) -> (usize, T) {
    let base = CURRENT.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
    let out = f();
    ENABLED.store(false, Ordering::Relaxed);
    let peak = PEAK.load(Ordering::Relaxed).saturating_sub(base);
    (peak.max(0) as usize, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: this test exercises the counter arithmetic directly — the
    // test binary does not register the allocator globally, so it must
    // not rely on real allocations being tracked.
    #[test]
    fn window_tracks_relative_peak() {
        let (peak, value) = measure_peak(|| {
            on_alloc(1000);
            on_alloc(500);
            on_dealloc(800);
            on_alloc(100);
            7
        });
        assert_eq!(value, 7);
        assert!(peak >= 1500, "{peak}");
        // Outside the window the counters ignore traffic entirely.
        let before = CURRENT.load(Ordering::Relaxed);
        on_alloc(1 << 30);
        assert_eq!(CURRENT.load(Ordering::Relaxed), before);
        // A dealloc of pre-window memory inside a window cannot wrap the
        // measurement below zero.
        let (peak, _) = measure_peak(|| on_dealloc(1 << 20));
        assert_eq!(peak, 0);
    }
}
