//! Match task context and auxiliary information shared by all matchers.

use crate::engine::{MatchMemo, NameSimCache, PairMask};
use crate::matchers::datatype::TypeCompatTable;
use crate::matchers::feedback::Feedback;
use crate::matchers::instances::InstanceStore;
use crate::matchers::name_engine::NameEngine;
use crate::matchers::synonym::SynonymTable;
use coma_graph::{PathId, PathSet, Schema};
use coma_repo::Repository;
use coma_strings::AbbreviationTable;
use std::sync::Arc;

/// Auxiliary information available to matchers (paper, Table 3): synonym
/// dictionaries, abbreviation tables, the data-type compatibility table,
/// and user-provided (mis)match feedback.
#[derive(Debug, Clone, Default)]
pub struct Auxiliary {
    /// Terminological relationships for the `Synonym` matcher.
    pub synonyms: SynonymTable,
    /// Abbreviation/acronym expansions for name tokenization.
    pub abbreviations: AbbreviationTable,
    /// Compatibility degrees for the `DataType` matcher.
    pub type_compat: TypeCompatTable,
    /// User-specified matches and mismatches for `UserFeedback`.
    pub feedback: Feedback,
    /// Sample instance values for the `Instance` matcher (extension).
    pub instances: InstanceStore,
}

impl Auxiliary {
    /// Auxiliary information with the standard tables (trivial
    /// abbreviations, default type compatibility, no synonyms, no feedback).
    pub fn standard() -> Auxiliary {
        Auxiliary {
            synonyms: SynonymTable::new(),
            abbreviations: AbbreviationTable::standard(),
            type_compat: TypeCompatTable::standard(),
            feedback: Feedback::new(),
            instances: InstanceStore::new(),
        }
    }
}

/// Everything a matcher needs to compute its similarity matrix for one
/// match task: the two schemas, their path unfoldings (the match objects),
/// auxiliary information, and — for reuse matchers — the repository.
///
/// Matrix row `i` corresponds to source path id `i` in DFS preorder, and
/// column `j` to target path id `j`; [`MatchContext::source_elem`] and
/// [`MatchContext::target_elem`] convert indices back to [`PathId`]s.
#[derive(Clone, Copy)]
pub struct MatchContext<'a> {
    /// The source schema S1.
    pub source: &'a Schema,
    /// The target schema S2.
    pub target: &'a Schema,
    /// Path unfolding of S1.
    pub source_paths: &'a PathSet,
    /// Path unfolding of S2.
    pub target_paths: &'a PathSet,
    /// Auxiliary matcher information.
    pub aux: &'a Auxiliary,
    /// The repository, for reuse-oriented matchers. `None` disables reuse.
    pub repository: Option<&'a Repository>,
    /// Shared-work memoization for one plan execution (attached by the
    /// [`PlanEngine`](crate::engine::PlanEngine)). `None` means every
    /// matcher computes from scratch, as the legacy pipeline always did.
    pub memo: Option<&'a MatchMemo>,
    /// Search-space restriction for the current stage. Cell-local matchers
    /// (see [`Matcher::cell_local`](crate::Matcher::cell_local)) skip
    /// disallowed pairs; `None` allows every pair.
    pub restriction: Option<&'a PairMask>,
}

impl<'a> MatchContext<'a> {
    /// Creates a context without repository access.
    pub fn new(
        source: &'a Schema,
        target: &'a Schema,
        source_paths: &'a PathSet,
        target_paths: &'a PathSet,
        aux: &'a Auxiliary,
    ) -> MatchContext<'a> {
        MatchContext {
            source,
            target,
            source_paths,
            target_paths,
            aux,
            repository: None,
            memo: None,
            restriction: None,
        }
    }

    /// Attaches a repository (enables the reuse matchers).
    pub fn with_repository(mut self, repository: &'a Repository) -> MatchContext<'a> {
        self.repository = Some(repository);
        self
    }

    /// Attaches a shared-work memo (the engine does this once per plan
    /// execution).
    pub fn with_memo<'b>(self, memo: &'b MatchMemo) -> MatchContext<'b>
    where
        'a: 'b,
    {
        MatchContext {
            memo: Some(memo),
            ..self
        }
    }

    /// Restricts the search space to the pairs a mask allows.
    pub fn with_restriction<'b>(self, restriction: &'b PairMask) -> MatchContext<'b>
    where
        'a: 'b,
    {
        MatchContext {
            restriction: Some(restriction),
            ..self
        }
    }

    /// Drops any search-space restriction (structural matchers need the
    /// full pair space for correct set similarities).
    pub fn without_restriction(self) -> MatchContext<'a> {
        MatchContext {
            restriction: None,
            ..self
        }
    }

    /// Whether the pair (source `i`, target `j`) is in the search space.
    #[inline]
    pub fn allows(&self, i: usize, j: usize) -> bool {
        self.restriction.is_none_or(|mask| mask.allows(i, j))
    }

    /// A name-pair similarity cache for `engine`: shared across matchers
    /// with the same engine configuration when a memo is attached, purely
    /// local otherwise.
    pub fn name_sim_cache(&self, engine: &NameEngine) -> NameSimCache {
        match self.memo {
            Some(memo) => memo.name_sim_cache(engine),
            None => NameSimCache::local(),
        }
    }

    /// The (memoized, engine-independent) token set of a name.
    pub fn token_set(&self, engine: &NameEngine, name: &str) -> Arc<Vec<String>> {
        match self.memo {
            Some(memo) => memo.token_set(name, || engine.token_set(name, self.aux)),
            None => Arc::new(engine.token_set(name, self.aux)),
        }
    }

    /// Number of source elements (`m`).
    pub fn rows(&self) -> usize {
        self.source_paths.len()
    }

    /// Number of target elements (`n`).
    pub fn cols(&self) -> usize {
        self.target_paths.len()
    }

    /// The source path for matrix row `i`.
    pub fn source_elem(&self, i: usize) -> PathId {
        self.source_paths
            .iter()
            .nth(i)
            .expect("row index within bounds")
    }

    /// The target path for matrix column `j`.
    pub fn target_elem(&self, j: usize) -> PathId {
        self.target_paths
            .iter()
            .nth(j)
            .expect("column index within bounds")
    }

    /// Element name of source row `i` (last node on the path).
    pub fn source_name(&self, i: usize) -> &'a str {
        self.source_paths.name(self.source, self.source_elem(i))
    }

    /// Element name of target column `j`.
    pub fn target_name(&self, j: usize) -> &'a str {
        self.target_paths.name(self.target, self.target_elem(j))
    }

    /// Dotted full name of source row `i`.
    pub fn source_full_name(&self, i: usize) -> String {
        self.source_paths
            .full_name(self.source, self.source_elem(i))
    }

    /// Dotted full name of target column `j`.
    pub fn target_full_name(&self, j: usize) -> String {
        self.target_paths
            .full_name(self.target, self.target_elem(j))
    }
}
