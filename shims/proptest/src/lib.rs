//! Offline stand-in for `proptest`: the strategy/runner surface this
//! workspace's property tests use, without shrinking.
//!
//! Supported: the `proptest!` macro, `prop_assert!` / `prop_assert_eq!`,
//! range strategies over integers and floats, tuple and `Vec<Strategy>`
//! composition, `Just`, `prop_map` / `prop_flat_map`,
//! `collection::{vec, btree_set}`, and `string::string_regex` for simple
//! character-class patterns.
//!
//! Failing cases are reported with their generated input but are not
//! shrunk. The case count defaults to 256 and can be overridden with the
//! `PROPTEST_CASES` environment variable.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! The runner driving each `proptest!`-generated test.

    use super::strategy::Strategy;
    use std::fmt;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Why a single test case did not pass.
    #[derive(Debug, Clone, PartialEq)]
    pub enum TestCaseError {
        /// The property was violated.
        Fail(String),
        /// The input was rejected (unused by this shim's strategies).
        Reject(String),
    }

    impl TestCaseError {
        /// A failed property with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected input with the given message.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    /// A deterministic pseudo-random source (SplitMix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an rng from a seed.
        pub fn new(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// The next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Multiply-shift bounding; bias is irrelevant for testing.
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }

        /// A uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn case_count() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256)
    }

    fn seed_from_name(name: &str) -> u64 {
        // FNV-1a keeps runs deterministic per test but varied across tests.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Runs `test` against `cases` inputs generated from `strategy`,
    /// panicking with the offending input on the first failure.
    pub fn run_cases<S, F>(name: &str, strategy: S, test: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::new(seed_from_name(name));
        for case in 0..case_count() {
            let value = strategy.generate(&mut rng);
            let repr = format!("{value:?}");
            match catch_unwind(AssertUnwindSafe(|| test(value))) {
                Ok(Ok(())) => {}
                Ok(Err(TestCaseError::Reject(_))) => {}
                Ok(Err(TestCaseError::Fail(msg))) => {
                    panic!("proptest `{name}` failed at case {case}\n  input: {repr}\n  {msg}");
                }
                Err(panic_payload) => {
                    eprintln!("proptest `{name}` panicked at case {case}\n  input: {repr}");
                    resume_unwind(panic_payload);
                }
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies and combinators.

    use super::test_runner::TestRng;
    use std::fmt::Debug;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Each element drawn from the corresponding strategy.
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 G)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl strategy::Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl strategy::Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl strategy::Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.unit_f64() as $t;
                self.start + unit * (self.end - self.start)
            }
        }

        impl strategy::Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                // Map [0,1) onto [start,end]; the endpoint is reachable
                // through rounding at the top of the range.
                let unit = (rng.unit_f64() * (1.0 + f64::EPSILON)).min(1.0) as $t;
                start + unit * (end - start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

pub mod collection {
    //! Collection strategies with a size specification.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive range of collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.lo == self.hi {
                self.lo
            } else {
                self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
            }
        }
    }

    /// A `Vec` of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `BTreeSet` of distinct values from `element`, sized within
    /// `size` when the element domain allows it.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            // Cap the attempts so a small element domain cannot loop
            // forever; the set is then simply smaller than requested.
            for _ in 0..(target.saturating_mul(50).max(100)) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

pub mod string {
    //! String strategies from simple regex-like patterns.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// A malformed or unsupported pattern.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "string_regex: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    enum Atom {
        /// One literal character.
        Literal(char),
        /// One character drawn from a class.
        Class(Vec<(char, char)>),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    /// Generates strings matching a subset of regex syntax: literal
    /// characters and `[...]` classes (with ranges), each optionally
    /// quantified by `{m}`, `{m,n}`, `?`, `*` or `+` (unbounded
    /// quantifiers cap at 16 repetitions).
    pub fn string_regex(pattern: &str) -> Result<RegexStrategy, Error> {
        let mut pieces = Vec::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let mut ranges = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        let c = chars
                            .next()
                            .ok_or_else(|| Error("unterminated class".into()))?;
                        match c {
                            ']' => break,
                            '-' if prev.is_some() && chars.peek() != Some(&']') => {
                                let hi = chars.next().unwrap();
                                let lo = prev.take().unwrap();
                                // `prev` was already pushed as a singleton;
                                // replace it with the full range.
                                ranges.pop();
                                if lo > hi {
                                    return Err(Error(format!("bad range {lo}-{hi}")));
                                }
                                ranges.push((lo, hi));
                            }
                            '\\' => {
                                let c = chars
                                    .next()
                                    .ok_or_else(|| Error("dangling escape".into()))?;
                                ranges.push((c, c));
                                prev = Some(c);
                            }
                            c => {
                                ranges.push((c, c));
                                prev = Some(c);
                            }
                        }
                    }
                    if ranges.is_empty() {
                        return Err(Error("empty class".into()));
                    }
                    Atom::Class(ranges)
                }
                '\\' => {
                    let c = chars
                        .next()
                        .ok_or_else(|| Error("dangling escape".into()))?;
                    Atom::Literal(c)
                }
                '(' | ')' | '|' | '.' | '^' | '$' => {
                    return Err(Error(format!("unsupported metacharacter `{c}`")));
                }
                c => Atom::Literal(c),
            };
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        spec.push(c);
                    }
                    let parse = |s: &str| {
                        s.parse::<usize>()
                            .map_err(|_| Error(format!("bad quantifier `{{{spec}}}`")))
                    };
                    match spec.split_once(',') {
                        None => {
                            let n = parse(&spec)?;
                            (n, n)
                        }
                        Some((lo, "")) => (parse(lo)?, parse(lo)?.max(16)),
                        Some((lo, hi)) => (parse(lo)?, parse(hi)?),
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 16)
                }
                Some('+') => {
                    chars.next();
                    (1, 16)
                }
                _ => (1, 1),
            };
            if min > max {
                return Err(Error("quantifier min exceeds max".into()));
            }
            pieces.push(Piece { atom, min, max });
        }
        Ok(RegexStrategy { pieces })
    }

    /// See [`string_regex`].
    pub struct RegexStrategy {
        pieces: Vec<Piece>,
    }

    impl Strategy for RegexStrategy {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for piece in &self.pieces {
                let count = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
                for _ in 0..count {
                    match &piece.atom {
                        Atom::Literal(c) => out.push(*c),
                        Atom::Class(ranges) => {
                            let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
                            let span = hi as u32 - lo as u32 + 1;
                            let code = lo as u32 + rng.below(u64::from(span)) as u32;
                            out.push(char::from_u32(code).unwrap_or(lo));
                        }
                    }
                }
            }
            out
        }
    }
}

pub mod prelude {
    //! The usual glob-import surface.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

pub use strategy::{Just, Strategy};
pub use test_runner::TestCaseError;

/// Asserts a condition inside a property test, failing the case (with
/// its input reported) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Asserts two values are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Asserts two values are unequal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body against generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_cases(
                    stringify!($name),
                    ($($strat,)*),
                    |($($pat,)*)| {
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        use crate::test_runner::TestRng;
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let f = (0.25f64..=0.75).generate(&mut rng);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn string_regex_matches_class_and_quantifier() {
        use crate::test_runner::TestRng;
        let s = crate::string::string_regex("[A-Za-z0-9_]{0,16}").unwrap();
        let mut rng = TestRng::new(42);
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!(v.len() <= 16);
            assert!(v.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
    }

    #[test]
    fn btree_set_respects_size_when_domain_allows() {
        use crate::test_runner::TestRng;
        let s = crate::collection::btree_set(0usize..100, 5usize..=5);
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng).len(), 5);
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(a in 0usize..50, b in 0usize..50) {
            prop_assert!(a + b < 100);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
