//! End-to-end match benchmarks: full matcher execution on the corpus'
//! hardest task (Paragon <-> Apertum, 80 × 145 paths) and the per-series
//! re-combination cost that dominates the 12,312-series sweep.

use coma_core::{CombinedSim, MatchContext, MatcherLibrary};
use coma_eval::experiment::grid::SeriesSpec;
use coma_eval::experiment::Harness;
use coma_eval::Corpus;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_matchers_on_hardest_task(c: &mut Criterion) {
    let corpus = Corpus::load();
    let (i, j) = (3, 4); // Paragon <-> Apertum
    let library = MatcherLibrary::standard();
    let mut group = c.benchmark_group("matchers_4x5");
    group.sample_size(10);
    for name in ["Name", "NamePath", "TypeName", "Children", "Leaves"] {
        let matcher = library.get(name).expect("standard matcher");
        group.bench_function(name, |b| {
            let ctx = MatchContext::new(
                corpus.schema(i),
                corpus.schema(j),
                corpus.path_set(i),
                corpus.path_set(j),
                corpus.aux(),
            );
            b.iter(|| black_box(matcher.compute(black_box(&ctx))))
        });
    }
    group.finish();
}

fn bench_series_evaluation(c: &mut Criterion) {
    let harness = Harness::new();
    let spec = SeriesSpec {
        matchers: coma_eval::experiment::HYBRIDS
            .iter()
            .map(|m| m.to_string())
            .collect(),
        aggregation: coma_core::Aggregation::Average,
        direction: coma_core::Direction::Both,
        selection: coma_core::Selection::delta(0.02).with_threshold(0.5),
        combined_sim: CombinedSim::Average,
        reuse: false,
    };
    let mut group = c.benchmark_group("sweep");
    group.sample_size(20);
    group.bench_function("series_all_10_tasks", |b| {
        b.iter(|| black_box(harness.evaluate(black_box(&spec))))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matchers_on_hardest_task,
    bench_series_evaluation
);
criterion_main!(benches);
