//! Composable match plans: a two-stage `Seq(filter → refine)` process a
//! flat `MatchStrategy` cannot express, plus the pruning and iteration
//! operators built on top of it.
//!
//! Stage 1 runs the cheap `Name` matcher under a liberal selection to
//! collect plausible pairs; stage 2 re-scores only the survivors with the
//! full (expensive) hybrid combination and makes the final selection. The
//! plan engine restricts the refine stage's search space to the filter's
//! survivors, runs independent matchers in parallel, and memoizes shared
//! work (e.g. the `TypeName` matrix used by `Children` and `Leaves`).
//! `TopK` tightens the filter to the k best candidates per element
//! (putting the structural matchers on the engine's sparse path), and
//! `Iterate` re-runs a plan to a fixpoint.
//!
//! Run with: `cargo run --example plan_matching`

use coma::core::Selection;
use coma::graph::PathSet;
use coma::{Coma, MatchPlan, MatchStrategy, TopKPer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's running-example schemas (Figure 1).
    let po1 = coma::sql::import_ddl(
        r#"
        CREATE TABLE PO1.ShipTo (
            poNo INT,
            custNo INT REFERENCES PO1.Customer,
            shipToStreet VARCHAR(200),
            shipToCity VARCHAR(200),
            shipToZip VARCHAR(20),
            PRIMARY KEY (poNo)
        );
        CREATE TABLE PO1.Customer (
            custNo INT,
            custName VARCHAR(200),
            custStreet VARCHAR(200),
            custCity VARCHAR(200),
            custZip VARCHAR(20),
            PRIMARY KEY (custNo)
        );"#,
        "PO1",
    )?;
    let po2 = coma::xml::import_xsd(
        r#"
        <xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
          <xsd:complexType name="PO2">
            <xsd:sequence>
              <xsd:element name="DeliverTo" type="Address"/>
              <xsd:element name="BillTo" type="Address"/>
            </xsd:sequence>
          </xsd:complexType>
          <xsd:complexType name="Address">
            <xsd:sequence>
              <xsd:element name="Street" type="xsd:string"/>
              <xsd:element name="City" type="xsd:string"/>
              <xsd:element name="Zip" type="xsd:decimal"/>
            </xsd:sequence>
          </xsd:complexType>
        </xsd:schema>"#,
        "PO2",
    )?;

    let mut coma = Coma::new();
    coma.aux_mut().synonyms.add_synonym("ship", "deliver");
    coma.aux_mut().synonyms.add_synonym("bill", "invoice");

    // The two-stage plan: Seq(Matchers(Name)[liberal] -> Matchers(All)).
    let plan = MatchPlan::two_stage(
        ["Name"],
        Selection::max_n(4).with_threshold(0.3),
        &MatchStrategy::paper_default(),
    );
    println!("plan: {}\n", plan.label());

    let outcome = coma.match_plan(&po1, &po2, &plan)?;

    // Every stage materializes its own similarity cube and result.
    for (n, stage) in outcome.stages.iter().enumerate() {
        println!(
            "stage {}: {} slice(s), {} selected pair(s)",
            n + 1,
            stage.cube.len(),
            stage.result.len()
        );
    }

    let p1 = PathSet::new(&po1)?;
    let p2 = PathSet::new(&po2)?;
    println!(
        "\nfinal result ({} correspondences, schema similarity {:.2}):",
        outcome.result.len(),
        outcome.result.schema_similarity.unwrap_or(0.0)
    );
    for cand in &outcome.result.candidates {
        println!(
            "  {:<28} ↔ {:<28} {:.2}",
            p1.full_name(&po1, cand.source),
            p2.full_name(&po2, cand.target),
            cand.similarity
        );
    }

    // The refine stage only ever saw the filter's survivors.
    let filter_stage = &outcome.stages[0];
    assert!(outcome
        .result
        .candidates
        .iter()
        .all(|c| filter_stage.result.contains(c.source, c.target)));
    println!("\nevery refined pair survived the Name prefilter ✓");

    // Pruning and iteration: keep each element's 3 best Name candidates
    // (TopK — downstream matchers then run on the engine's sparse path),
    // refine, and re-run to a fixpoint (Iterate; at most 4 rounds, stop
    // when the result matrix moves by less than 1e-6).
    let topk = MatchPlan::matchers(["Name"]).top_k(3, TopKPer::Both)?;
    let pruned =
        MatchPlan::seq(topk, MatchPlan::from(&MatchStrategy::paper_default())).iterate(4, 1e-6)?;
    println!("\npruned + iterated plan: {}", pruned.label());
    let looped = coma.match_plan(&po1, &po2, &pruned)?;
    println!(
        "ran {} stage(s), final result: {} correspondences",
        looped.stages.len(),
        looped.result.len()
    );
    assert!(!looped.result.is_empty());
    Ok(())
}
