//! Reuse of previous match results (paper, Section 5): the
//! [`match_compose`] operation, the reuse-oriented matchers
//! [`SchemaMatcher`] (`SchemaM` / `SchemaA`) and [`FragmentMatcher`], and
//! the transitive [`ReuseResolver`] that walks stored-mapping *chains*
//! (`Repository::pivot_chains`) and scores pivot paths.

use crate::combine::Aggregation;
use crate::cube::{SimCube, SimMatrix};
use crate::matchers::context::MatchContext;
use crate::matchers::Matcher;
use coma_graph::PathSet;
use coma_repo::{Mapping, MappingKind, PivotChain, Repository};
use coma_strings::tokenize;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::{BTreeSet, HashMap};

/// How the two similarities of a transitive chain `a↔b↔c` are combined by
/// MatchCompose. The paper (Section 5.1) argues that the common
/// multiplication approach "may lead to rapidly degrading similarity
/// values" (0.5·0.7 = 0.35) and prefers Average (→ 0.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComposeCombine {
    /// `(s1 + s2) / 2` — the paper's choice.
    Average,
    /// `s1 · s2` — the information-retrieval tradition; degrades quickly.
    Multiply,
    /// `min(s1, s2)` — pessimistic.
    Min,
    /// `max(s1, s2)` — optimistic.
    Max,
}

impl ComposeCombine {
    /// Applies the combination to a pair of similarities.
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ComposeCombine::Average => (a + b) / 2.0,
            ComposeCombine::Multiply => a * b,
            ComposeCombine::Min => a.min(b),
            ComposeCombine::Max => a.max(b),
        }
    }
}

/// The MatchCompose operation: derives `match: S1↔S3` from
/// `match1: S1↔S2` and `match2: S2↔S3` by a natural join on the shared S2
/// elements (Section 5.1, Figure 3).
pub fn match_compose(m1: &Mapping, m2: &Mapping, combine: ComposeCombine) -> Mapping {
    m1.compose(m2, |a, b| combine.apply(a, b))
}

/// The `Schema` reuse matcher (Section 5.2, Figure 5): searches the
/// repository for pivot schemas `S` with stored results `S1↔S` and `S↔S2`,
/// MatchComposes each pair, and aggregates the composed results into one
/// similarity matrix (one slice per composed mapping; missing pairs count
/// as similarity 0, so pairs found via many pivots dominate — this is what
/// "compensates the problem of false n:m matches" in Section 7.3).
pub struct SchemaMatcher {
    name: String,
    /// Restricts which stored mappings qualify (`None` = all).
    pub kind_filter: Option<MappingKind>,
    /// Transitive-similarity combination (default Average).
    pub compose: ComposeCombine,
    /// Aggregation across multiple composed results (default Average).
    pub aggregation: Aggregation,
}

impl SchemaMatcher {
    /// `SchemaM`: reuses manually confirmed match results.
    pub fn manual() -> SchemaMatcher {
        SchemaMatcher {
            name: "SchemaM".into(),
            kind_filter: Some(MappingKind::Manual),
            compose: ComposeCombine::Average,
            aggregation: Aggregation::Average,
        }
    }

    /// `SchemaA`: reuses automatically derived match results.
    pub fn automatic() -> SchemaMatcher {
        SchemaMatcher {
            name: "SchemaA".into(),
            kind_filter: Some(MappingKind::Automatic),
            compose: ComposeCombine::Average,
            aggregation: Aggregation::Average,
        }
    }

    /// A custom variant.
    pub fn with_name(name: impl Into<String>, kind_filter: Option<MappingKind>) -> SchemaMatcher {
        SchemaMatcher {
            name: name.into(),
            kind_filter,
            compose: ComposeCombine::Average,
            aggregation: Aggregation::Average,
        }
    }
}

/// Converts a (full-name keyed) mapping into a matrix for a task.
/// Correspondences naming unknown paths are ignored.
fn mapping_to_matrix(
    mapping: &Mapping,
    src_index: &HashMap<String, usize>,
    tgt_index: &HashMap<String, usize>,
    rows: usize,
    cols: usize,
) -> SimMatrix {
    let mut m = SimMatrix::new(rows, cols);
    for c in &mapping.correspondences {
        if let (Some(&i), Some(&j)) = (src_index.get(&c.source), tgt_index.get(&c.target)) {
            // Keep the best value if duplicates appear.
            if c.similarity > m.get(i, j) {
                m.set(i, j, c.similarity);
            }
        }
    }
    m
}

impl Matcher for SchemaMatcher {
    fn name(&self) -> &str {
        &self.name
    }

    /// Reads the repository: never cached across executions.
    fn pure(&self) -> bool {
        false
    }

    fn compute(&self, ctx: &MatchContext<'_>) -> SimMatrix {
        let (rows, cols) = (ctx.rows(), ctx.cols());
        let Some(repo) = ctx.repository else {
            return SimMatrix::new(rows, cols);
        };
        let pairs = repo.pivot_pairs(ctx.source.name(), ctx.target.name(), |m| {
            self.kind_filter.is_none_or(|k| m.kind == k)
        });
        if pairs.is_empty() {
            return SimMatrix::new(rows, cols);
        }
        let src_index: HashMap<String, usize> =
            (0..rows).map(|i| (ctx.source_full_name(i), i)).collect();
        let tgt_index: HashMap<String, usize> =
            (0..cols).map(|j| (ctx.target_full_name(j), j)).collect();

        let mut cube = SimCube::new();
        for (k, (first, second)) in pairs.iter().enumerate() {
            let composed = match_compose(first, second, self.compose);
            let slice = mapping_to_matrix(&composed, &src_index, &tgt_index, rows, cols);
            cube.push(format!("compose-{k}"), slice);
        }
        self.aggregation.aggregate(&cube)
    }
}

/// Why one pivot path was (or was not) preferred by the [`ReuseResolver`]:
/// the per-path inputs of the selection score, surfaced on the stage
/// outcome so `coma-cli --verbose` can explain the choice.
#[derive(Debug, Clone, PartialEq)]
pub struct ReusePathStats {
    /// Pivot schemas along the path, joined with `->` (e.g. `PO2->PO3`).
    pub via: String,
    /// Stored mappings composed along the path (2 = single pivot).
    pub hops: usize,
    /// Correspondences surviving the composition.
    pub correspondences: usize,
    /// Fraction of the task's elements the composed mapping touches
    /// (mean of source-side and target-side endpoint coverage).
    pub coverage: f64,
    /// Jaccard overlap between the path's vocabulary (pivot names +
    /// correspondence paths) and the task sides' vocabulary.
    pub vocab_overlap: f64,
    /// Selection score: `(2 / hops) · (0.7·coverage + 0.3·vocab_overlap)`.
    /// Paths are ranked by fewest hops first, then by this score, then by
    /// the lexicographically smaller `via`.
    pub score: f64,
}

/// Diagnostics of one transitive reuse resolution, recorded on the
/// executing stage's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ReuseStats {
    /// Hop budget the graph walk ran with.
    pub max_hops: usize,
    /// Per-path stats, best first — `paths[0]` is the chosen pivot path,
    /// and every path sharing its (minimal) hop count contributed to the
    /// merged candidate; longer paths are listed but rejected. Empty when
    /// the repository holds no path between the task schemas.
    pub paths: Vec<ReusePathStats>,
    /// Correspondences in the merged candidate mapping.
    pub merged_correspondences: usize,
}

/// A resolved reuse request: the merged candidate mapping plus the path
/// diagnostics that explain it.
#[derive(Debug, Clone)]
pub struct ReuseResolution {
    /// The candidate mapping, merged across the minimal-hop pivot paths
    /// (per-pair average over the paths witnessing the pair).
    pub mapping: Mapping,
    /// Per-path and aggregate diagnostics.
    pub stats: ReuseStats,
}

/// Transitive reuse over stored-mapping chains: walks the repository's
/// mapping graph ([`Repository::pivot_chains`]), MatchComposes every
/// pivot path up to [`ReuseResolver::max_hops`] mappings long, scores the
/// paths (length, coverage, vocabulary overlap), and merges them into one
/// candidate [`Mapping`] from the minimal-hop paths.
///
/// Unlike the single-pivot [`SchemaMatcher`] — which renders every
/// composed mapping as one cube slice and Average-aggregates with
/// missing pairs as 0 — the resolver averages only over the chains that
/// witness a pair, and never merges a longer chain when a shorter path
/// exists. Longer budgets unlock pivots only reachable through several
/// stored results (S1↔A ∘ A↔B ∘ B↔S2) without diluting direct pivots.
pub struct ReuseResolver {
    /// Restricts which stored mappings qualify (`None` = all).
    pub kind_filter: Option<MappingKind>,
    /// Transitive-similarity combination (default Average).
    pub compose: ComposeCombine,
    /// Maximum number of stored mappings per chain (≥ 2).
    pub max_hops: usize,
}

impl ReuseResolver {
    /// A resolver with the paper-default Average combination.
    pub fn new(kind_filter: Option<MappingKind>, max_hops: usize) -> ReuseResolver {
        ReuseResolver {
            kind_filter,
            compose: ComposeCombine::Average,
            max_hops,
        }
    }

    /// Resolves `source ↔ target` from stored mappings alone. Returns an
    /// empty mapping (and empty `stats.paths`) when the graph holds no
    /// pivot path — callers use that to decide on fresh-match fallback.
    pub fn resolve(&self, repo: &Repository, source: &str, target: &str) -> ReuseResolution {
        let chains = repo.pivot_chains(source, target, self.max_hops, |m| {
            self.kind_filter.is_none_or(|k| m.kind == k)
        });
        let source_vocab = schema_vocabulary(repo, source);
        let target_vocab = schema_vocabulary(repo, target);
        let task_vocab: BTreeSet<String> = source_vocab.union(&target_vocab).cloned().collect();
        let source_universe = schema_path_count(repo, source);
        let target_universe = schema_path_count(repo, target);

        let mut composed: Vec<(Mapping, ReusePathStats)> = chains
            .iter()
            .map(|chain| {
                let mut acc = chain.hops[0].clone();
                for hop in &chain.hops[1..] {
                    acc = match_compose(&acc, hop, self.compose);
                }
                let stats = path_stats(chain, &acc, &task_vocab, source_universe, target_universe);
                (acc, stats)
            })
            .collect();
        // Rank: fewest hops first (every extra hop composes one more
        // *automatic* result into the chain, compounding its errors — the
        // degradation the paper's Section 5.1 argument is about), then the
        // coverage/vocabulary score, then the via label for determinism.
        composed.sort_by(|a, b| {
            a.1.hops
                .cmp(&b.1.hops)
                .then(b.1.score.partial_cmp(&a.1.score).unwrap_or(Ordering::Equal))
                .then(a.1.via.cmp(&b.1.via))
        });

        // Merge the minimal-hop chains into one candidate, per-pair
        // averaging over the chains that actually witness the pair. Longer
        // chains are enumerated (and reported in the stats, so `--verbose`
        // shows what was rejected) but never merged when a shorter path
        // exists: on the evaluation corpus, folding 3-hop compositions of
        // automatic results into the merge costs ~0.1 F-measure, and
        // zero-filling non-witnessing chains (the SchemaMatcher's slice
        // semantics) drags multi-path merges below the 0.5 selection
        // threshold. `max_hops` is a search budget for sparse graphs, not
        // an instruction to dilute short paths with long ones.
        let min_hops = composed.first().map_or(0, |(_, s)| s.hops);
        let mut sums: HashMap<(String, String), (f64, f64)> = HashMap::new();
        let mut order: Vec<(String, String)> = Vec::new();
        for (m, _) in composed.iter().filter(|(_, s)| s.hops == min_hops) {
            for c in &m.correspondences {
                let key = (c.source.clone(), c.target.clone());
                match sums.get_mut(&key) {
                    Some(sum) => {
                        sum.0 += c.similarity;
                        sum.1 += 1.0;
                    }
                    None => {
                        sums.insert(key.clone(), (c.similarity, 1.0));
                        order.push(key);
                    }
                }
            }
        }
        let mut mapping = Mapping::new(source, target, MappingKind::Automatic);
        for key in order {
            let (sum, count) = sums[&key];
            mapping.push(key.0, key.1, sum / count);
        }
        let stats = ReuseStats {
            max_hops: self.max_hops,
            paths: composed.into_iter().map(|(_, s)| s).collect(),
            merged_correspondences: mapping.len(),
        };
        ReuseResolution { mapping, stats }
    }

    /// Resolves the context's task pair and renders the merged candidate
    /// as a similarity matrix over the task's paths. Without a repository
    /// the matrix is zero and `stats.paths` is empty.
    pub fn compute(&self, ctx: &MatchContext<'_>) -> (SimMatrix, ReuseStats) {
        let (rows, cols) = (ctx.rows(), ctx.cols());
        let Some(repo) = ctx.repository else {
            return (
                SimMatrix::new(rows, cols),
                ReuseStats {
                    max_hops: self.max_hops,
                    paths: Vec::new(),
                    merged_correspondences: 0,
                },
            );
        };
        let resolution = self.resolve(repo, ctx.source.name(), ctx.target.name());
        let src_index: HashMap<String, usize> =
            (0..rows).map(|i| (ctx.source_full_name(i), i)).collect();
        let tgt_index: HashMap<String, usize> =
            (0..cols).map(|j| (ctx.target_full_name(j), j)).collect();
        let matrix = mapping_to_matrix(&resolution.mapping, &src_index, &tgt_index, rows, cols);
        (matrix, resolution.stats)
    }
}

/// Tokens of a stored schema: its name plus every node name. Schemas not
/// stored in the repository contribute their name only.
fn schema_vocabulary(repo: &Repository, name: &str) -> BTreeSet<String> {
    let mut vocab: BTreeSet<String> = tokenize(name).into_iter().collect();
    if let Some(schema) = repo.schema(name) {
        if let Ok(paths) = PathSet::new(schema) {
            for id in paths.iter() {
                vocab.extend(tokenize(paths.name(schema, id)));
            }
        }
    }
    vocab
}

/// Number of paths in a stored schema (`None` when the schema — or its
/// unfolding — is unavailable; coverage then falls back to the composed
/// mapping's own endpoints).
fn schema_path_count(repo: &Repository, name: &str) -> Option<usize> {
    repo.schema(name)
        .and_then(|s| PathSet::new(s).ok())
        .map(|p| p.len())
}

/// Scores one composed pivot path.
fn path_stats(
    chain: &PivotChain,
    composed: &Mapping,
    task_vocab: &BTreeSet<String>,
    source_universe: Option<usize>,
    target_universe: Option<usize>,
) -> ReusePathStats {
    let hops = chain.hops.len();
    let src_endpoints: BTreeSet<&str> = composed
        .correspondences
        .iter()
        .map(|c| c.source.as_str())
        .collect();
    let tgt_endpoints: BTreeSet<&str> = composed
        .correspondences
        .iter()
        .map(|c| c.target.as_str())
        .collect();
    let side = |covered: usize, universe: Option<usize>| {
        let total = universe.unwrap_or(covered);
        if total == 0 {
            0.0
        } else {
            covered as f64 / total as f64
        }
    };
    let coverage = (side(src_endpoints.len(), source_universe)
        + side(tgt_endpoints.len(), target_universe))
        / 2.0;

    let mut path_vocab: BTreeSet<String> = BTreeSet::new();
    for pivot in &chain.pivots {
        path_vocab.extend(tokenize(pivot));
    }
    for hop in &chain.hops {
        for c in &hop.correspondences {
            path_vocab.extend(tokenize(&c.source));
            path_vocab.extend(tokenize(&c.target));
        }
    }
    let intersection = path_vocab.intersection(task_vocab).count();
    let union = path_vocab.union(task_vocab).count();
    let vocab_overlap = if union == 0 {
        0.0
    } else {
        intersection as f64 / union as f64
    };

    let score = (2.0 / hops as f64) * (0.7 * coverage + 0.3 * vocab_overlap);
    ReusePathStats {
        via: chain.pivots.join("->"),
        hops,
        correspondences: composed.len(),
        coverage,
        vocab_overlap,
        score,
    }
}

/// The `Fragment` reuse matcher. The paper names it ("the other, Fragment,
/// operates on schema fragments", Section 5) without details; this is our
/// reconstruction, documented in DESIGN.md:
///
/// Every stored correspondence also witnesses correspondences between the
/// **path suffixes** of its two elements (`…ShipTo.Address.City ↔
/// …DeliverTo.Address.City` witnesses `Address.City ↔ Address.City` and
/// `City ↔ City`). The matcher harvests all suffix pairs up to
/// [`FragmentMatcher::max_suffix`] from qualifying stored mappings —
/// including mappings of *other* schema pairs — and applies the dictionary
/// to the task's paths, preferring the longest matching suffix.
pub struct FragmentMatcher {
    /// Restricts which stored mappings qualify (`None` = all).
    pub kind_filter: Option<MappingKind>,
    /// Maximum suffix length harvested (in path steps).
    pub max_suffix: usize,
}

impl FragmentMatcher {
    /// Fragment matcher over all stored mappings, suffixes up to 3 steps.
    pub fn new() -> FragmentMatcher {
        FragmentMatcher {
            kind_filter: None,
            max_suffix: 3,
        }
    }
}

impl Default for FragmentMatcher {
    fn default() -> Self {
        FragmentMatcher::new()
    }
}

fn suffix(path: &str, k: usize) -> Option<String> {
    let parts: Vec<&str> = path.split('.').collect();
    if parts.len() < k || k == 0 {
        return None;
    }
    Some(parts[parts.len() - k..].join("."))
}

impl Matcher for FragmentMatcher {
    fn name(&self) -> &str {
        "Fragment"
    }

    /// Reads the repository: never cached across executions.
    fn pure(&self) -> bool {
        false
    }

    fn compute(&self, ctx: &MatchContext<'_>) -> SimMatrix {
        let (rows, cols) = (ctx.rows(), ctx.cols());
        let mut out = SimMatrix::new(rows, cols);
        let Some(repo) = ctx.repository else {
            return out;
        };
        let (src_name, tgt_name) = (ctx.source.name(), ctx.target.name());

        // Harvest the suffix dictionary, keeping the best similarity per
        // suffix pair. Mappings involving the task pair itself are skipped —
        // those are direct results, not reuse.
        let mut dict: Vec<HashMap<(String, String), f64>> =
            vec![HashMap::new(); self.max_suffix + 1];
        for m in repo.mappings() {
            if m.relates(src_name, tgt_name) {
                continue;
            }
            if let Some(k) = self.kind_filter {
                if m.kind != k {
                    continue;
                }
            }
            for c in &m.correspondences {
                for (k, level) in dict.iter_mut().enumerate().skip(1) {
                    if let (Some(a), Some(b)) = (suffix(&c.source, k), suffix(&c.target, k)) {
                        let e = level.entry((a.clone(), b.clone())).or_insert(0.0);
                        *e = e.max(c.similarity);
                        // Suffix pairs witness both orientations.
                        let e2 = level.entry((b, a)).or_insert(0.0);
                        *e2 = e2.max(c.similarity);
                    }
                }
            }
        }
        if dict.iter().all(HashMap::is_empty) {
            return out;
        }

        let src_names: Vec<String> = (0..rows).map(|i| ctx.source_full_name(i)).collect();
        let tgt_names: Vec<String> = (0..cols).map(|j| ctx.target_full_name(j)).collect();
        for (i, a) in src_names.iter().enumerate() {
            for (j, b) in tgt_names.iter().enumerate() {
                // Longest matching suffix wins.
                for k in (1..=self.max_suffix).rev() {
                    let (Some(sa), Some(sb)) = (suffix(a, k), suffix(b, k)) else {
                        continue;
                    };
                    if let Some(&sim) = dict[k].get(&(sa, sb)) {
                        out.set(i, j, sim);
                        break;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matchers::context::Auxiliary;
    use coma_graph::{DataType, Node, PathSet, Schema, SchemaBuilder};
    use coma_repo::Repository;

    fn contact_schema(name: &str, leaves: &[&str]) -> Schema {
        let mut b = SchemaBuilder::new(name);
        let root = b.add_node(Node::new(name));
        let contact = b.add_node(Node::new("Contact"));
        b.add_child(root, contact).unwrap();
        for leaf in leaves {
            let n = b.add_node(Node::new(*leaf).with_datatype(DataType::Text));
            b.add_child(contact, n).unwrap();
        }
        b.build().unwrap()
    }

    /// Figure 3: PO1 {Name, Email, company}, PO2 {name, e-mail, company},
    /// PO3 {firstName, lastName, email, company}.
    fn figure3_repo() -> Repository {
        let mut repo = Repository::new();
        let mut m1 = Mapping::new("PO1", "PO2", MappingKind::Manual);
        m1.push("PO1.Contact.Email", "PO2.Contact.e-mail", 1.0);
        m1.push("PO1.Contact.Name", "PO2.Contact.name", 1.0);
        repo.put_mapping(m1);
        let mut m2 = Mapping::new("PO2", "PO3", MappingKind::Manual);
        m2.push("PO2.Contact.e-mail", "PO3.Contact.email", 1.0);
        m2.push("PO2.Contact.name", "PO3.Contact.firstName", 0.8);
        m2.push("PO2.Contact.name", "PO3.Contact.lastName", 0.8);
        repo.put_mapping(m2);
        repo
    }

    #[test]
    fn schema_matcher_reproduces_figure_3() {
        let s1 = contact_schema("PO1", &["Name", "Email", "company"]);
        let s3 = contact_schema("PO3", &["firstName", "lastName", "email", "company"]);
        let p1 = PathSet::new(&s1).unwrap();
        let p3 = PathSet::new(&s3).unwrap();
        let aux = Auxiliary::standard();
        let repo = figure3_repo();
        let ctx = MatchContext::new(&s1, &s3, &p1, &p3, &aux).with_repository(&repo);
        let m = SchemaMatcher::manual().compute(&ctx);

        let cell = |a: &str, b: &str| {
            let i = p1.find_by_full_name(&s1, a).unwrap().index();
            let j = p3.find_by_full_name(&s3, b).unwrap().index();
            m.get(i, j)
        };
        // Email ↔ email composes to (1+1)/2 = 1.0.
        assert_eq!(cell("PO1.Contact.Email", "PO3.Contact.email"), 1.0);
        // Name ↔ firstName: (1+0.8)/2 = 0.9.
        assert!((cell("PO1.Contact.Name", "PO3.Contact.firstName") - 0.9).abs() < 1e-12);
        // company has no counterpart in PO2 → missed (Figure 3's caveat).
        assert_eq!(cell("PO1.Contact.company", "PO3.Contact.company"), 0.0);
    }

    #[test]
    fn schema_matcher_respects_kind_filter() {
        let s1 = contact_schema("PO1", &["Name"]);
        let s3 = contact_schema("PO3", &["firstName"]);
        let p1 = PathSet::new(&s1).unwrap();
        let p3 = PathSet::new(&s3).unwrap();
        let aux = Auxiliary::standard();
        let repo = figure3_repo(); // all mappings are Manual
        let ctx = MatchContext::new(&s1, &s3, &p1, &p3, &aux).with_repository(&repo);
        let m = SchemaMatcher::automatic().compute(&ctx);
        assert!(m.values().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn schema_matcher_without_repository_is_zero() {
        let s1 = contact_schema("PO1", &["Name"]);
        let s3 = contact_schema("PO3", &["firstName"]);
        let p1 = PathSet::new(&s1).unwrap();
        let p3 = PathSet::new(&s3).unwrap();
        let aux = Auxiliary::standard();
        let ctx = MatchContext::new(&s1, &s3, &p1, &p3, &aux);
        let m = SchemaMatcher::manual().compute(&ctx);
        assert!(m.values().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn averaging_multiple_pivots_dampens_spurious_matches() {
        // Two pivots; only one witnesses a (spurious) correspondence, both
        // witness the true one → true 1.0, spurious 0.5·value.
        let s1 = contact_schema("A", &["email", "fax"]);
        let s2 = contact_schema("B", &["email", "phone"]);
        let mut repo = Repository::new();
        for pivot in ["P", "Q"] {
            let mut m1 = Mapping::new("A", pivot, MappingKind::Manual);
            m1.push("A.Contact.email", format!("{pivot}.Contact.email"), 1.0);
            if pivot == "P" {
                m1.push("A.Contact.fax", format!("{pivot}.Contact.phone"), 1.0);
            }
            repo.put_mapping(m1);
            let mut m2 = Mapping::new(pivot, "B", MappingKind::Manual);
            m2.push(format!("{pivot}.Contact.email"), "B.Contact.email", 1.0);
            if pivot == "P" {
                m2.push(format!("{pivot}.Contact.phone"), "B.Contact.phone", 1.0);
            }
            repo.put_mapping(m2);
        }
        let p1 = PathSet::new(&s1).unwrap();
        let p2 = PathSet::new(&s2).unwrap();
        let aux = Auxiliary::standard();
        let ctx = MatchContext::new(&s1, &s2, &p1, &p2, &aux).with_repository(&repo);
        let m = SchemaMatcher::manual().compute(&ctx);
        let cell = |a: &str, b: &str| {
            let i = p1.find_by_full_name(&s1, a).unwrap().index();
            let j = p2.find_by_full_name(&s2, b).unwrap().index();
            m.get(i, j)
        };
        assert_eq!(cell("A.Contact.email", "B.Contact.email"), 1.0);
        assert_eq!(cell("A.Contact.fax", "B.Contact.phone"), 0.5);
    }

    #[test]
    fn resolver_with_two_hops_matches_schema_matcher() {
        let s1 = contact_schema("PO1", &["Name", "Email", "company"]);
        let s3 = contact_schema("PO3", &["firstName", "lastName", "email", "company"]);
        let p1 = PathSet::new(&s1).unwrap();
        let p3 = PathSet::new(&s3).unwrap();
        let aux = Auxiliary::standard();
        let repo = figure3_repo();
        let ctx = MatchContext::new(&s1, &s3, &p1, &p3, &aux).with_repository(&repo);
        let matcher = SchemaMatcher::manual().compute(&ctx);
        let resolver = ReuseResolver::new(Some(MappingKind::Manual), 2);
        let (resolved, stats) = resolver.compute(&ctx);
        for i in 0..p1.len() {
            for j in 0..p3.len() {
                assert!(
                    (matcher.get(i, j) - resolved.get(i, j)).abs() < 1e-12,
                    "cell ({i},{j}): matcher {} vs resolver {}",
                    matcher.get(i, j),
                    resolved.get(i, j)
                );
            }
        }
        assert_eq!(stats.paths.len(), 1);
        assert_eq!(stats.paths[0].via, "PO2");
        assert_eq!(stats.paths[0].hops, 2);
        assert_eq!(stats.merged_correspondences, 3);
    }

    #[test]
    fn resolver_walks_longer_chains_than_the_schema_matcher() {
        // PO1↔PO2, PO2↔PO3, PO3↔PO4: reaching PO4 needs a 3-hop chain.
        let mut repo = figure3_repo();
        let mut m3 = Mapping::new("PO3", "PO4", MappingKind::Manual);
        m3.push("PO3.Contact.email", "PO4.Contact.mail", 1.0);
        repo.put_mapping(m3);

        let s1 = contact_schema("PO1", &["Name", "Email"]);
        let s4 = contact_schema("PO4", &["mail"]);
        let p1 = PathSet::new(&s1).unwrap();
        let p4 = PathSet::new(&s4).unwrap();
        let aux = Auxiliary::standard();
        let ctx = MatchContext::new(&s1, &s4, &p1, &p4, &aux).with_repository(&repo);

        // Single-pivot reuse finds nothing: no S with PO1↔S and S↔PO4.
        let single = SchemaMatcher::manual().compute(&ctx);
        assert!(single.values().iter().all(|&v| v == 0.0));
        let two_hop = ReuseResolver::new(Some(MappingKind::Manual), 2);
        let (m, stats) = two_hop.compute(&ctx);
        assert!(m.values().iter().all(|&v| v == 0.0));
        assert!(stats.paths.is_empty());

        // The 3-hop chain PO1→PO2→PO3→PO4 carries Email→mail:
        // avg(avg(1.0, 1.0), 1.0) = 1.0.
        let resolver = ReuseResolver::new(Some(MappingKind::Manual), 3);
        let (m, stats) = resolver.compute(&ctx);
        let i = p1
            .find_by_full_name(&s1, "PO1.Contact.Email")
            .unwrap()
            .index();
        let j = p4
            .find_by_full_name(&s4, "PO4.Contact.mail")
            .unwrap()
            .index();
        assert_eq!(m.get(i, j), 1.0);
        assert_eq!(stats.paths.len(), 1);
        assert_eq!(stats.paths[0].via, "PO2->PO3");
        assert_eq!(stats.paths[0].hops, 3);
    }

    #[test]
    fn resolver_ranks_shorter_better_covering_paths_first() {
        // Two routes A→B: via P (direct pivot, covers both elements) and
        // via the chain X→Y (covers one element). P must rank first.
        let mut repo = Repository::new();
        repo.put_schema(contact_schema("A", &["email", "phone"]));
        repo.put_schema(contact_schema("B", &["email", "phone"]));
        let mut m = Mapping::new("A", "P", MappingKind::Manual);
        m.push("A.Contact.email", "P.Contact.email", 1.0);
        m.push("A.Contact.phone", "P.Contact.phone", 1.0);
        repo.put_mapping(m);
        let mut m = Mapping::new("P", "B", MappingKind::Manual);
        m.push("P.Contact.email", "B.Contact.email", 1.0);
        m.push("P.Contact.phone", "B.Contact.phone", 1.0);
        repo.put_mapping(m);
        let mut m = Mapping::new("A", "X", MappingKind::Manual);
        m.push("A.Contact.email", "X.Contact.email", 1.0);
        repo.put_mapping(m);
        let mut m = Mapping::new("X", "Y", MappingKind::Manual);
        m.push("X.Contact.email", "Y.Contact.email", 1.0);
        repo.put_mapping(m);
        let mut m = Mapping::new("Y", "B", MappingKind::Manual);
        m.push("Y.Contact.email", "B.Contact.email", 1.0);
        repo.put_mapping(m);

        let resolver = ReuseResolver::new(Some(MappingKind::Manual), 3);
        let resolution = resolver.resolve(&repo, "A", "B");
        assert_eq!(resolution.stats.paths.len(), 2);
        let best = &resolution.stats.paths[0];
        assert_eq!(best.via, "P");
        assert_eq!(best.hops, 2);
        assert!(best.score > resolution.stats.paths[1].score);
        assert!(best.coverage > resolution.stats.paths[1].coverage);
        // Merged candidate: the minimal-hop path via P alone — the 3-hop
        // X→Y route is listed in the stats but rejected from the merge,
        // so phone (witnessed only by P) keeps its full similarity.
        let sim = |s: &str, t: &str| {
            resolution
                .mapping
                .correspondences
                .iter()
                .find(|c| c.source == s && c.target == t)
                .map(|c| c.similarity)
        };
        assert_eq!(sim("A.Contact.email", "B.Contact.email"), Some(1.0));
        assert_eq!(sim("A.Contact.phone", "B.Contact.phone"), Some(1.0));
        assert_eq!(resolution.stats.merged_correspondences, 2);
    }

    #[test]
    fn resolver_reports_empty_paths_when_graph_is_disconnected() {
        let repo = Repository::new();
        let resolver = ReuseResolver::new(None, 4);
        let resolution = resolver.resolve(&repo, "S1", "S2");
        assert!(resolution.mapping.is_empty());
        assert!(resolution.stats.paths.is_empty());
        assert_eq!(resolution.stats.max_hops, 4);
    }

    #[test]
    fn compose_combine_variants() {
        assert_eq!(ComposeCombine::Average.apply(0.5, 0.7), 0.6);
        assert!((ComposeCombine::Multiply.apply(0.5, 0.7) - 0.35).abs() < 1e-12);
        assert_eq!(ComposeCombine::Min.apply(0.5, 0.7), 0.5);
        assert_eq!(ComposeCombine::Max.apply(0.5, 0.7), 0.7);
    }

    #[test]
    fn fragment_matcher_transfers_suffix_correspondences() {
        // A↔B never matched; but C↔D contains Address.City ↔ Address.City
        // tails that transfer.
        let mut sb = SchemaBuilder::new("A");
        let root = sb.add_node(Node::new("A"));
        let ship = sb.add_node(Node::new("ShipTo"));
        let city = sb.add_node(Node::new("City").with_datatype(DataType::Text));
        sb.add_child(root, ship).unwrap();
        sb.add_child(ship, city).unwrap();
        let s1 = sb.build().unwrap();

        let mut sb = SchemaBuilder::new("B");
        let root = sb.add_node(Node::new("B"));
        let deliver = sb.add_node(Node::new("DeliverTo"));
        let city = sb.add_node(Node::new("City").with_datatype(DataType::Text));
        sb.add_child(root, deliver).unwrap();
        sb.add_child(deliver, city).unwrap();
        let s2 = sb.build().unwrap();

        let mut repo = Repository::new();
        let mut m = Mapping::new("C", "D", MappingKind::Manual);
        m.push("C.Order.ShipTo.City", "D.Header.DeliverTo.City", 0.9);
        repo.put_mapping(m);

        let p1 = PathSet::new(&s1).unwrap();
        let p2 = PathSet::new(&s2).unwrap();
        let aux = Auxiliary::standard();
        let ctx = MatchContext::new(&s1, &s2, &p1, &p2, &aux).with_repository(&repo);
        let out = FragmentMatcher::new().compute(&ctx);
        let i = p1.find_by_full_name(&s1, "A.ShipTo.City").unwrap().index();
        let j = p2
            .find_by_full_name(&s2, "B.DeliverTo.City")
            .unwrap()
            .index();
        // Suffix "ShipTo.City" ↔ "DeliverTo.City" (k=2) transfers 0.9.
        assert_eq!(out.get(i, j), 0.9);
    }

    #[test]
    fn fragment_matcher_ignores_direct_mappings() {
        let s1 = contact_schema("A", &["email"]);
        let s2 = contact_schema("B", &["email"]);
        let mut repo = Repository::new();
        let mut m = Mapping::new("A", "B", MappingKind::Manual);
        m.push("A.Contact.email", "B.Contact.email", 1.0);
        repo.put_mapping(m);
        let p1 = PathSet::new(&s1).unwrap();
        let p2 = PathSet::new(&s2).unwrap();
        let aux = Auxiliary::standard();
        let ctx = MatchContext::new(&s1, &s2, &p1, &p2, &aux).with_repository(&repo);
        let out = FragmentMatcher::new().compute(&ctx);
        assert!(out.values().iter().all(|&v| v == 0.0));
    }
}
