//! Instance-level matching — the extension the paper names as future work
//! (Section 7.5: "we see potential for improvement by adding further
//! matchers, e.g. those exploiting instance-level data"). LSD/GLUE-style
//! learners are out of scope; this matcher follows the non-learning
//! instance techniques of the survey the paper builds on: value-overlap
//! and value-pattern statistics.

use crate::cube::SimMatrix;
use crate::matchers::context::MatchContext;
use crate::matchers::Matcher;
use coma_strings::dice_coefficient;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// Sample instance values per schema element, keyed by (schema name,
/// dotted path name). Part of [`Auxiliary`](crate::Auxiliary).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InstanceStore {
    values: HashMap<(String, String), Vec<String>>,
}

impl InstanceStore {
    /// An empty store.
    pub fn new() -> InstanceStore {
        InstanceStore::default()
    }

    /// Adds sample values for one element (appends to existing samples).
    pub fn add_values<S: Into<String>>(
        &mut self,
        schema: &str,
        path: &str,
        values: impl IntoIterator<Item = S>,
    ) {
        self.values
            .entry((schema.to_string(), path.to_string()))
            .or_default()
            .extend(values.into_iter().map(Into::into));
    }

    /// The samples of one element, if any were registered.
    pub fn values(&self, schema: &str, path: &str) -> Option<&[String]> {
        self.values
            .get(&(schema.to_string(), path.to_string()))
            .map(Vec::as_slice)
    }

    /// Number of elements with samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store holds no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Statistical profile of an element's sample values: the "constraint-based
/// instance characterization" of the survey (value lengths, character
/// classes, numeric share).
#[derive(Debug, Clone, Copy, PartialEq)]
struct ValueProfile {
    avg_len: f64,
    numeric_ratio: f64,
    alpha_ratio: f64,
    digit_char_ratio: f64,
}

impl ValueProfile {
    fn of(values: &[String]) -> ValueProfile {
        assert!(!values.is_empty());
        let n = values.len() as f64;
        let avg_len = values.iter().map(|v| v.chars().count() as f64).sum::<f64>() / n;
        let numeric = values
            .iter()
            .filter(|v| v.trim().parse::<f64>().is_ok())
            .count() as f64;
        let (mut alpha, mut digit, mut total) = (0f64, 0f64, 0f64);
        for v in values {
            for c in v.chars() {
                total += 1.0;
                if c.is_alphabetic() {
                    alpha += 1.0;
                }
                if c.is_ascii_digit() {
                    digit += 1.0;
                }
            }
        }
        let total = total.max(1.0);
        ValueProfile {
            avg_len,
            numeric_ratio: numeric / n,
            alpha_ratio: alpha / total,
            digit_char_ratio: digit / total,
        }
    }

    /// Similarity of two profiles in `[0, 1]`.
    fn similarity(&self, other: &ValueProfile) -> f64 {
        let len_sim =
            1.0 - (self.avg_len - other.avg_len).abs() / self.avg_len.max(other.avg_len).max(1.0);
        let num_sim = 1.0 - (self.numeric_ratio - other.numeric_ratio).abs();
        let alpha_sim = 1.0 - (self.alpha_ratio - other.alpha_ratio).abs();
        let digit_sim = 1.0 - (self.digit_char_ratio - other.digit_char_ratio).abs();
        ((len_sim + num_sim + alpha_sim + digit_sim) / 4.0).clamp(0.0, 1.0)
    }
}

/// The `Instance` matcher: similarity of elements from their sample values.
///
/// `sim = overlap_weight · Dice(value sets) + profile_weight · profile
/// similarity`; pairs where either element lacks samples score 0, so the
/// matcher composes safely with schema-level matchers under `Max`
/// aggregation (complementing them exactly where data is available).
#[derive(Debug, Clone)]
pub struct InstanceMatcher {
    /// Weight of the normalized value-set overlap (default 0.6).
    pub overlap_weight: f64,
    /// Weight of the statistical profile similarity (default 0.4).
    pub profile_weight: f64,
}

impl InstanceMatcher {
    /// The default configuration.
    pub fn new() -> InstanceMatcher {
        InstanceMatcher {
            overlap_weight: 0.6,
            profile_weight: 0.4,
        }
    }
}

impl Default for InstanceMatcher {
    fn default() -> Self {
        InstanceMatcher::new()
    }
}

fn normalized_set(values: &[String]) -> BTreeSet<String> {
    values
        .iter()
        .map(|v| v.trim().to_lowercase())
        .filter(|v| !v.is_empty())
        .collect()
}

impl Matcher for InstanceMatcher {
    fn name(&self) -> &str {
        "Instance"
    }

    fn compute(&self, ctx: &MatchContext<'_>) -> SimMatrix {
        let mut out = SimMatrix::new(ctx.rows(), ctx.cols());
        let store = &ctx.aux.instances;
        if store.is_empty() {
            return out;
        }
        let src_name = ctx.source.name();
        let tgt_name = ctx.target.name();
        // Pre-resolve samples per element.
        let src: Vec<Option<(BTreeSet<String>, ValueProfile)>> = (0..ctx.rows())
            .map(|i| {
                store
                    .values(src_name, &ctx.source_full_name(i))
                    .filter(|v| !v.is_empty())
                    .map(|v| (normalized_set(v), ValueProfile::of(v)))
            })
            .collect();
        let tgt: Vec<Option<(BTreeSet<String>, ValueProfile)>> = (0..ctx.cols())
            .map(|j| {
                store
                    .values(tgt_name, &ctx.target_full_name(j))
                    .filter(|v| !v.is_empty())
                    .map(|v| (normalized_set(v), ValueProfile::of(v)))
            })
            .collect();
        let total = self.overlap_weight + self.profile_weight;
        for (i, s) in src.iter().enumerate() {
            let Some((s_set, s_prof)) = s else { continue };
            for (j, t) in tgt.iter().enumerate() {
                let Some((t_set, t_prof)) = t else { continue };
                let overlap = dice_coefficient(s_set, t_set);
                let profile = s_prof.similarity(t_prof);
                out.set(
                    i,
                    j,
                    (self.overlap_weight * overlap + self.profile_weight * profile) / total,
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matchers::context::Auxiliary;
    use coma_graph::{DataType, Node, PathSet, Schema, SchemaBuilder};

    fn schema(name: &str, leaves: &[&str]) -> Schema {
        let mut b = SchemaBuilder::new(name);
        let root = b.add_node(Node::new(name));
        for leaf in leaves {
            let n = b.add_node(Node::new(*leaf).with_datatype(DataType::Text));
            b.add_child(root, n).unwrap();
        }
        b.build().unwrap()
    }

    fn compute(aux: &Auxiliary, s1: &Schema, s2: &Schema) -> (SimMatrix, PathSet, PathSet) {
        let p1 = PathSet::new(s1).unwrap();
        let p2 = PathSet::new(s2).unwrap();
        let ctx = MatchContext::new(s1, s2, &p1, &p2, aux);
        (InstanceMatcher::new().compute(&ctx), p1, p2)
    }

    #[test]
    fn overlapping_values_match_despite_opaque_names() {
        // Column f1 and colA share country values; names are useless.
        let s1 = schema("A", &["f1", "f2"]);
        let s2 = schema("B", &["colA", "colB"]);
        let mut aux = Auxiliary::standard();
        aux.instances
            .add_values("A", "A.f1", ["Germany", "France", "Italy"]);
        aux.instances
            .add_values("A", "A.f2", ["12.99", "7.50", "120.00"]);
        aux.instances
            .add_values("B", "B.colA", ["germany", "france", "Spain"]);
        aux.instances.add_values("B", "B.colB", ["9.99", "15.00"]);
        let (m, p1, p2) = compute(&aux, &s1, &s2);
        let cell = |a: &str, b: &str| {
            m.get(
                p1.find_by_full_name(&s1, a).unwrap().index(),
                p2.find_by_full_name(&s2, b).unwrap().index(),
            )
        };
        assert!(cell("A.f1", "B.colA") > 0.6, "{}", cell("A.f1", "B.colA"));
        // Prices share no values but have matching numeric profiles.
        assert!(cell("A.f2", "B.colB") > cell("A.f2", "B.colA"));
        // The country/price cross pairs stay low.
        assert!(cell("A.f1", "B.colB") < 0.5);
    }

    #[test]
    fn missing_samples_score_zero() {
        let s1 = schema("A", &["x"]);
        let s2 = schema("B", &["y"]);
        let mut aux = Auxiliary::standard();
        aux.instances.add_values("A", "A.x", ["v1"]);
        // B.y has no samples.
        let (m, p1, p2) = compute(&aux, &s1, &s2);
        let i = p1.find_by_full_name(&s1, "A.x").unwrap().index();
        let j = p2.find_by_full_name(&s2, "B.y").unwrap().index();
        assert_eq!(m.get(i, j), 0.0);
    }

    #[test]
    fn empty_store_yields_zero_matrix() {
        let s1 = schema("A", &["x"]);
        let s2 = schema("B", &["y"]);
        let aux = Auxiliary::standard();
        let (m, _, _) = compute(&aux, &s1, &s2);
        assert!(m.values().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn value_normalization_ignores_case_and_space() {
        let s1 = schema("A", &["x"]);
        let s2 = schema("B", &["y"]);
        let mut aux = Auxiliary::standard();
        aux.instances.add_values("A", "A.x", [" EUR ", "usd"]);
        aux.instances.add_values("B", "B.y", ["eur", "USD"]);
        let (m, p1, p2) = compute(&aux, &s1, &s2);
        let i = p1.find_by_full_name(&s1, "A.x").unwrap().index();
        let j = p2.find_by_full_name(&s2, "B.y").unwrap().index();
        assert!(m.get(i, j) > 0.9, "{}", m.get(i, j));
    }

    #[test]
    fn profile_similarity_is_bounded_and_reflexive() {
        let values: Vec<String> = ["abc", "defg", "12x"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let p = ValueProfile::of(&values);
        assert!((p.similarity(&p) - 1.0).abs() < 1e-12);
        let other = ValueProfile::of(&["1".to_string()]);
        let sim = p.similarity(&other);
        assert!((0.0..=1.0).contains(&sim));
    }

    #[test]
    fn store_accumulates_and_reports() {
        let mut store = InstanceStore::new();
        assert!(store.is_empty());
        store.add_values("S", "S.a", ["1"]);
        store.add_values("S", "S.a", ["2"]);
        assert_eq!(store.len(), 1);
        assert_eq!(store.values("S", "S.a").unwrap().len(), 2);
        assert!(store.values("S", "S.b").is_none());
    }
}
